"""Vectorized LSH bucket storage and vote aggregation.

The pre-kernel :class:`~repro.index.lsh.HammingLSH` kept each bucket as
a plain Python list that grew by one entry per (descriptor, key) hit —
so a hot bucket held thousands of duplicate refs — and aggregated votes
with a per-key Python loop over ``set(bucket)``.  This module replaces
both ends:

* buckets are **sorted, duplicate-free int64 arrays** — an image's ref
  enters a bucket at most once, at insert time;
* vote aggregation gathers the hit buckets and reduces them with a
  single weighted ``np.bincount`` instead of per-ref dict updates.

Vote semantics are unchanged: a ref earns one vote per (query
descriptor, table) bucket hit, so a key hit by *c* query descriptors
contributes its bucket with weight *c*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import IndexError_

#: Exact-int ceiling of float64 bincount weights; vote totals are
#: bounded by n_descriptors * n_tables, far below this.
_FLOAT64_EXACT_INT = 2**53

#: One query's hash keys grouped per table: ``(unique_keys, counts)``
#: pairs, one per LSH table, as produced by :func:`group_query_keys`.
GroupedKeys = "list[tuple[np.ndarray, np.ndarray]]"


def group_query_keys(keys: np.ndarray) -> "GroupedKeys":
    """Deduplicate a query's ``(n_desc, n_tables)`` keys per table.

    The per-table ``np.unique`` pass is a pure function of the query's
    keys — it does not depend on any bucket store — so a sharded index
    derives it **once** in the coordinator and ships the grouped form
    to every shard (thread or process), instead of paying the unique
    pass again per shard.  :meth:`BucketStore.votes` is exactly
    ``votes_from_grouped(group_query_keys(keys))``.
    """
    keys = np.asarray(keys)
    if keys.ndim != 2:
        raise IndexError_(f"expected 2-D (n_desc, n_tables) keys, got {keys.shape}")
    return [
        np.unique(table_keys, return_counts=True) for table_keys in keys.T
    ]


@dataclass
class BucketStore:
    """Per-table ``key -> sorted unique ref array`` bucket maps."""

    n_tables: int
    _tables: "list[dict[int, np.ndarray]]" = field(init=False, repr=False)
    _max_ref: int = field(default=-1, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_tables < 1:
            raise IndexError_(f"n_tables must be >= 1, got {self.n_tables}")
        self._tables = [{} for _ in range(self.n_tables)]

    # -- mutation ------------------------------------------------------------

    def insert(self, keys: np.ndarray, ref: int) -> None:
        """Register *ref* under its hash keys; shape ``(n_desc, n_tables)``.

        Deduplicated at insert: multiple descriptors of the same image
        hashing to the same key add the ref once, and re-inserting an
        existing ref is a no-op — exactly the set-semantics the old
        vote-time ``set(bucket)`` recovered, paid once instead of per
        lookup.
        """
        keys = np.asarray(keys)
        if keys.ndim != 2 or keys.shape[1] != self.n_tables:
            raise IndexError_(
                f"expected (n_desc, {self.n_tables}) keys, got {keys.shape}"
            )
        ref = int(ref)
        for table, table_keys in zip(self._tables, keys.T):
            for key in np.unique(table_keys).tolist():
                bucket = table.get(key)
                if bucket is None:
                    table[key] = np.array([ref], dtype=np.int64)
                    continue
                position = int(np.searchsorted(bucket, ref))
                if position < len(bucket) and bucket[position] == ref:
                    continue
                table[key] = np.insert(bucket, position, ref)
        if ref > self._max_ref:
            self._max_ref = ref

    # -- lookup --------------------------------------------------------------

    def votes(self, keys: np.ndarray) -> "dict[int, int]":
        """Ref -> vote count for a query's ``(n_desc, n_tables)`` keys."""
        keys = np.asarray(keys)
        if keys.ndim != 2 or keys.shape[1] != self.n_tables:
            raise IndexError_(
                f"expected (n_desc, {self.n_tables}) keys, got {keys.shape}"
            )
        if keys.shape[0] == 0 or self._max_ref < 0:
            return {}
        return self.votes_from_grouped(group_query_keys(keys))

    def votes_from_grouped(self, grouped: "GroupedKeys") -> "dict[int, int]":
        """Vote counts for keys already grouped by :func:`group_query_keys`.

        The sharded coordinator's entry point: the unique-key pass is
        shared across shards, each shard only gathers its own buckets.
        Counts are identical to :meth:`votes` on the ungrouped keys.
        """
        if len(grouped) != self.n_tables:
            raise IndexError_(
                f"expected {self.n_tables} grouped tables, got {len(grouped)}"
            )
        if self._max_ref < 0:
            return {}
        hit_refs: "list[np.ndarray]" = []
        hit_weights: "list[np.ndarray]" = []
        for table, (unique_keys, counts) in zip(self._tables, grouped):
            for key, count in zip(unique_keys.tolist(), counts.tolist()):
                bucket = table.get(key)
                if bucket is None:
                    continue
                hit_refs.append(bucket)
                hit_weights.append(np.full(len(bucket), count, dtype=np.float64))
        if not hit_refs:
            return {}
        totals = np.bincount(
            np.concatenate(hit_refs),
            weights=np.concatenate(hit_weights),
            minlength=self._max_ref + 1,
        )
        assert totals.max(initial=0.0) < _FLOAT64_EXACT_INT
        voted = np.nonzero(totals)[0]
        return {
            int(ref): int(total) for ref, total in zip(voted, totals[voted])
        }

    # -- introspection -------------------------------------------------------

    def bucket_lengths(self) -> "list[int]":
        """Every bucket's length, across tables (for tests/diagnostics)."""
        return [
            len(bucket) for table in self._tables for bucket in table.values()
        ]
