"""The byte-wise majority-vote kernel.

Forward redundancy sends ``k`` replicas of every chunk over a corrupting
channel and reconstructs by voting at each byte position — exactly the
noisy-vs-fixed reconstruction of satellite downlink pipelines, and the
degraded-network transfer strategy of :mod:`repro.network.transfer`.

The vote is **per bit within each byte position**: bit ``b`` of output
byte ``i`` is set iff a *strict* majority of the replicas have it set
(a tie, possible only for even ``k``, clears the bit).  This recovers
the exact payload whenever, at every byte position, strictly fewer than
``ceil(k / 2)`` replicas are corrupted — the property the transfer
suite pins — and it degrades gracefully when corruption is heavier:
each bit is decided independently, so a position no replica got fully
right can still come out mostly right.

The implementation is a numpy **bit-plane** reduction: the replica
stack is one ``(k, n)`` uint8 matrix, and for each of the 8 bit planes
one vectorised shift/mask/sum decides all ``n`` positions at once —
eight passes over the stack instead of ``8 * k * n`` Python-level bit
probes.  ``tests/kernels/test_majority.py`` proves it byte-identical to
the pure-Python per-byte reference on every tested input, and the
``majority_vote`` bench case gates the speedup.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import NetworkError


def _replica_stack(replicas: "Sequence[bytes]") -> "np.ndarray":
    """The ``(k, n)`` uint8 stack, validating shape agreement."""
    if not replicas:
        raise NetworkError("majority vote needs at least one replica")
    n_bytes = len(replicas[0])
    for number, replica in enumerate(replicas):
        if len(replica) != n_bytes:
            raise NetworkError(
                "majority vote needs equal-length replicas: replica "
                f"{number} has {len(replica)} byte(s), expected {n_bytes}"
            )
    joined = b"".join(bytes(replica) for replica in replicas)
    return np.frombuffer(joined, dtype=np.uint8).reshape(len(replicas), n_bytes)


def majority_vote_bytes(replicas: "Sequence[bytes]") -> bytes:
    """Reconstruct one payload from *replicas* by bit-plane majority.

    Replicas must agree in length (chunk replicas always do); a single
    replica is returned as-is.  Ties at even ``k`` clear the bit.
    """
    if len(replicas) == 1:
        return bytes(replicas[0])
    stack = _replica_stack(replicas)
    k = stack.shape[0]
    if stack.shape[1] == 0:
        return b""
    winner = np.zeros(stack.shape[1], dtype=np.uint8)
    one = np.uint8(1)
    for bit in range(8):
        ones = ((stack >> np.uint8(bit)) & one).sum(axis=0, dtype=np.int64)
        winner |= ((2 * ones > k).astype(np.uint8) << np.uint8(bit))
    return winner.tobytes()


def majority_vote_stats(replicas: "Sequence[bytes]") -> "tuple[bytes, int]":
    """:func:`majority_vote_bytes` plus the disputed-position count.

    Returns ``(winner, disputed)`` where *disputed* is the number of
    byte positions at which at least one replica disagrees with the
    voted winner — the "vote corrections" the transfer layer reports.
    """
    winner = majority_vote_bytes(replicas)
    if len(replicas) == 1 or len(winner) == 0:
        return winner, 0
    stack = _replica_stack(replicas)
    voted = np.frombuffer(winner, dtype=np.uint8)
    disputed = int((stack != voted[None, :]).any(axis=0).sum())
    return winner, disputed
