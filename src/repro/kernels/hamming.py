"""The blocked Hamming-distance kernel.

Packed binary descriptors (ORB's 32 uint8 bytes, the LSH float
sketches' 16) are reinterpreted as rows of uint64 words, so one XOR +
popcount touches 64 bits instead of 8 and the per-pair reduction is a
few-word accumulation instead of a 32-element gather through a lookup
table.  The word loop accumulates one ``(block, m)`` plane at a time,
so the ``(block, m, words)`` XOR tensor of the naive formulation is
never materialised.

Popcount backends, selected once at import (overridable per call for
the differential tests and the old-numpy CI leg):

``bitwise_count``
    ``np.bitwise_count`` (numpy >= 2.0) — a single vectorised ufunc.

``swar``
    The classic 64-bit SWAR bit-twiddling reduction (Hacker's Delight
    5-2), built from shifts/masks that every numpy ships.  Exact on the
    full uint64 range; the wrap-around of the final multiply is the
    intended modular arithmetic.

Distances are computed in **row blocks** sized so the intermediate
``(block, m, words)`` XOR tensor stays around :data:`BLOCK_TARGET_ELEMS`
elements — peak memory O(block * m) rather than the O(n * m * 32) the
pre-kernel implementation materialised.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import FeatureError

#: Backend names accepted by :func:`popcount_u64` and the env override.
BACKENDS = ("bitwise_count", "swar")

#: Target element count of one blocked XOR intermediate (uint64 words);
#: ~1M words = 8 MB per block, comfortably inside L3 on anything the
#: fleet runs on while still amortising the Python-level loop.
BLOCK_TARGET_ELEMS = 1 << 20

_SWAR_M1 = np.uint64(0x5555555555555555)
_SWAR_M2 = np.uint64(0x3333333333333333)
_SWAR_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_SWAR_H01 = np.uint64(0x0101010101010101)
_ONE = np.uint64(1)
_TWO = np.uint64(2)
_FOUR = np.uint64(4)
_FIFTYSIX = np.uint64(56)


def _resolve_backend() -> str:
    """The process-wide popcount backend (env-overridable for CI)."""
    forced = os.environ.get("REPRO_POPCOUNT_BACKEND", "").strip().lower()
    if forced:
        if forced not in BACKENDS:
            raise FeatureError(
                f"REPRO_POPCOUNT_BACKEND must be one of {BACKENDS}, got {forced!r}"
            )
        if forced == "bitwise_count" and not hasattr(np, "bitwise_count"):
            raise FeatureError(
                "REPRO_POPCOUNT_BACKEND=bitwise_count but this numpy "
                "has no np.bitwise_count (needs numpy >= 2.0)"
            )
        return forced
    return "bitwise_count" if hasattr(np, "bitwise_count") else "swar"


#: Resolved once; :func:`popcount_u64` takes a per-call override.
DEFAULT_BACKEND = _resolve_backend()


def popcount_u64(words: np.ndarray, backend: "str | None" = None) -> np.ndarray:
    """Per-element set-bit counts of a uint64 array, as uint64."""
    chosen = DEFAULT_BACKEND if backend is None else backend
    if chosen == "bitwise_count":
        return np.bitwise_count(words).astype(np.uint64)
    if chosen != "swar":
        raise FeatureError(f"unknown popcount backend {chosen!r}")
    x = words.astype(np.uint64, copy=True)
    x -= (x >> _ONE) & _SWAR_M1
    x = (x & _SWAR_M2) + ((x >> _TWO) & _SWAR_M2)
    x = (x + (x >> _FOUR)) & _SWAR_M4
    return (x * _SWAR_H01) >> _FIFTYSIX


def pack_rows_u64(packed: np.ndarray) -> np.ndarray:
    """View packed uint8 descriptor rows as ``(n, ceil(w/8))`` uint64.

    Rows whose byte width is not a multiple of 8 are zero-padded on the
    right; padding bytes XOR to zero, so Hamming distances are
    unaffected.  The dtype view is endianness-dependent but both sides
    of every XOR go through the same view, so distances are not.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise FeatureError(f"packed descriptors must be 2-D, got {packed.ndim}-D")
    n, width = packed.shape
    remainder = width % 8
    if remainder:
        padded = np.zeros((n, width + 8 - remainder), dtype=np.uint8)
        padded[:, :width] = packed
        packed = padded
    return packed.view(np.uint64)


def _block_rows(m_cols: int, words: int) -> int:
    """Row-block height keeping ``block * m * words`` near the target."""
    per_row = max(m_cols * words, 1)
    return max(1, BLOCK_TARGET_ELEMS // per_row)


def hamming_distance_matrix(
    a: np.ndarray,
    b: np.ndarray,
    backend: "str | None" = None,
    block_rows: "int | None" = None,
) -> np.ndarray:
    """Pairwise Hamming distances between packed binary descriptor rows.

    Accepts the same ``(n, w)`` / ``(m, w)`` uint8 inputs as the
    pre-kernel implementation and returns the identical int64 matrix;
    only the evaluation strategy (uint64 words, blocked rows) differs.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise FeatureError(f"incompatible descriptor shapes {a.shape} / {b.shape}")
    return hamming_distance_matrix_u64(
        pack_rows_u64(a), pack_rows_u64(b), backend=backend, block_rows=block_rows
    )


def hamming_distance_matrix_u64(
    a64: np.ndarray,
    b64: np.ndarray,
    backend: "str | None" = None,
    block_rows: "int | None" = None,
) -> np.ndarray:
    """Distance matrix for rows already packed by :func:`pack_rows_u64`.

    The batched similarity kernel packs each descriptor set once and
    calls this for every pair, hoisting the cast/pad out of the O(n²)
    loop.
    """
    if a64.ndim != 2 or b64.ndim != 2 or a64.shape[1] != b64.shape[1]:
        raise FeatureError(f"incompatible packed shapes {a64.shape} / {b64.shape}")
    chosen = DEFAULT_BACKEND if backend is None else backend
    if chosen not in BACKENDS:
        raise FeatureError(f"unknown popcount backend {chosen!r}")
    n, words = a64.shape
    m = b64.shape[0]
    distances = np.empty((n, m), dtype=np.int64)
    if n == 0 or m == 0:
        return distances
    block = block_rows if block_rows is not None else _block_rows(m, words)
    for start in range(0, n, block):
        stop = min(start + block, n)
        # Accumulate word by word: each step touches one (block, m)
        # plane, never the (block, m, words) tensor, and the uint8
        # counts of np.bitwise_count add without an upcast copy.
        acc = np.zeros((stop - start, m), dtype=np.uint64)
        for word in range(words):
            xor = np.bitwise_xor(a64[start:stop, word, None], b64[None, :, word])
            if chosen == "bitwise_count":
                acc += np.bitwise_count(xor)
            else:
                acc += popcount_u64(xor, backend=chosen)
        distances[start:stop] = acc
    return distances
