"""Shared-memory byte arenas for cross-process descriptor storage.

The process-parallel index (:mod:`repro.index.procpool`) moves each
shard's LSH tables and descriptor data into a worker process.  Two data
paths must not pay a pickle copy per request:

* **stored descriptors** — a shard worker appends every indexed image's
  serialized feature payload into its own arena; the worker's
  :class:`~repro.features.base.FeatureSet` entries are numpy views into
  those blocks, so LSH verification (:mod:`repro.kernels.hamming`)
  reads the bit-packed descriptor rows zero-copy, and the coordinator
  can :class:`attach <ArenaReader>` the same blocks to rebuild any
  entry without a round-trip through the pipe;
* **query staging** — the coordinator writes a batch's raw descriptor
  rows into a request arena once and ships only ``(block, offset,
  length)`` references; every worker reads the same bytes in place.

An arena is an append-only bump allocator over
:class:`multiprocessing.shared_memory.SharedMemory` blocks: allocation
never moves existing data (references stay valid forever) and blocks
are reference-shared, never copied.  Lifetime is managed explicitly by
the owning side — attaches are unregistered from the interpreter's
resource tracker so worker attach/detach cycles never trigger spurious
unlinks or exit-time warnings, while created blocks stay tracked as a
crash backstop; :meth:`SharedArena.close` (and the coordinator's
shutdown sweep) is what returns the memory.
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory
from typing import Iterator, NamedTuple

import numpy as np

from ..errors import ConfigurationError

#: Default block size of a growing arena (4 MiB).  Payloads larger than
#: a block get a dedicated block of their exact (aligned) size.
DEFAULT_CHUNK_BYTES = 4 << 20

#: Appends are aligned so numpy views of any standard dtype sit on a
#: natural boundary.
_ALIGN = 8


class ArenaRef(NamedTuple):
    """A stable, picklable reference to one arena allocation."""

    block: str
    offset: int
    length: int


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt *shm* out of the resource tracker (lifetime is explicit).

    Python 3.13 grows ``track=False``; on older interpreters the only
    supported spelling is unregistering after the fact.  The tracker
    daemon is shared by the coordinator and its spawned workers, so a
    worker's attach/detach must never unregister the owner's block —
    hence *every* handle opts out and :func:`_retrack` restores the
    registration immediately before an unlink, keeping the daemon's
    books balanced.
    """
    try:  # pragma: no cover - depends on interpreter version
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _retrack(shm: shared_memory.SharedMemory) -> None:
    """Re-register *shm* right before unlinking it (see :func:`_untrack`)."""
    try:  # pragma: no cover - depends on interpreter version
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach an existing shared block without adopting its lifetime."""
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    return shm


def unlink_block(name: str) -> bool:
    """Best-effort unlink of a block by name (shutdown/crash sweeps)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another sweep
        return False
    return True


def as_matrix(view: np.ndarray, n_rows: int, row_width: int, dtype: str) -> np.ndarray:
    """Reinterpret a uint8 arena slice as an ``(n_rows, row_width)`` matrix.

    Zero-copy: the returned array shares the shared-memory buffer, so
    the Hamming/L2 kernels read descriptor rows straight out of the
    arena.
    """
    matrix = view.view(np.dtype(dtype))
    if matrix.size != n_rows * row_width:
        raise ConfigurationError(
            f"arena slice holds {matrix.size} {dtype} elements, "
            f"expected {n_rows}x{row_width}"
        )
    return matrix.reshape(n_rows, row_width)


class SharedArena:
    """An owning, append-only allocator over shared-memory blocks."""

    def __init__(
        self, name_prefix: str = "bees", chunk_bytes: int = DEFAULT_CHUNK_BYTES
    ) -> None:
        if chunk_bytes < _ALIGN:
            raise ConfigurationError(
                f"chunk_bytes must be >= {_ALIGN}, got {chunk_bytes}"
            )
        self.name_prefix = name_prefix
        self.chunk_bytes = int(chunk_bytes)
        self._blocks: "dict[str, shared_memory.SharedMemory]" = {}
        self._active: "shared_memory.SharedMemory | None" = None
        self._cursor = 0
        self.used_bytes = 0
        self.allocated_bytes = 0
        self._closed = False

    # -- allocation ----------------------------------------------------------

    def _new_block(self, size: int) -> shared_memory.SharedMemory:
        name = f"{self.name_prefix}-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        _untrack(shm)
        self._blocks[shm.name] = shm
        self.allocated_bytes += size
        return shm

    def append(self, data: "bytes | bytearray | memoryview") -> ArenaRef:
        """Copy *data* into the arena; returns its permanent reference."""
        if self._closed:
            raise ConfigurationError("arena is closed")
        payload = memoryview(data)
        length = payload.nbytes
        aligned = max(_ALIGN, (length + _ALIGN - 1) & ~(_ALIGN - 1))
        if aligned > self.chunk_bytes:
            block = self._new_block(aligned)
            block.buf[:length] = payload
            self.used_bytes += length
            return ArenaRef(block.name, 0, length)
        if self._active is None or self._cursor + aligned > self._active.size:
            self._active = self._new_block(self.chunk_bytes)
            self._cursor = 0
        offset = self._cursor
        self._active.buf[offset : offset + length] = payload
        self._cursor += aligned
        self.used_bytes += length
        return ArenaRef(self._active.name, offset, length)

    # -- reading -------------------------------------------------------------

    def view(self, ref: ArenaRef) -> np.ndarray:
        """A zero-copy uint8 view of one allocation."""
        try:
            block = self._blocks[ref.block]
        except KeyError:
            raise ConfigurationError(
                f"arena ref names unknown block {ref.block!r}"
            ) from None
        return np.frombuffer(
            block.buf, dtype=np.uint8, count=ref.length, offset=ref.offset
        )

    def block_names(self) -> "list[str]":
        """Names of every allocated block (for cross-process sweeps)."""
        return list(self._blocks)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    # -- lifetime ------------------------------------------------------------

    def close(self, unlink: bool = True) -> None:
        """Release (and by default destroy) every block.  Idempotent.

        Unlinking works even while views of the block are alive (the
        mapping is freed when the last view dies), so an owner closing
        its arena under live entries still returns the memory.
        """
        if self._closed:
            return
        self._closed = True
        self._active = None
        for block in self._blocks.values():
            if unlink:
                try:
                    _retrack(block)
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already swept
                    pass
            _close_block(block)
        self._blocks.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Blocks whose close was deferred because a caller still held a numpy
#: view; keeping the handle referenced silences destructor noise and the
#: mapping is released when the last view dies.
_DEFERRED_CLOSES: "list[shared_memory.SharedMemory]" = []


def _close_block(block: shared_memory.SharedMemory) -> None:
    # Opportunistically retire earlier deferrals whose views have died.
    retry = _DEFERRED_CLOSES[:]
    _DEFERRED_CLOSES.clear()
    for deferred in retry:
        try:
            deferred.close()
        except BufferError:
            _DEFERRED_CLOSES.append(deferred)
    try:
        block.close()
    except BufferError:  # a view outlives the handle; unmap with it
        _DEFERRED_CLOSES.append(block)


class ArenaReader:
    """A non-owning view cache over another process's arena blocks."""

    def __init__(self) -> None:
        self._blocks: "dict[str, shared_memory.SharedMemory]" = {}

    def view(self, ref: ArenaRef) -> np.ndarray:
        """A zero-copy uint8 view of *ref* (attaching its block once)."""
        block = self._blocks.get(ref.block)
        if block is None:
            block = attach_block(ref.block)
            self._blocks[ref.block] = block
        return np.frombuffer(
            block.buf, dtype=np.uint8, count=ref.length, offset=ref.offset
        )

    def forget(self, names: "Iterator[str] | list[str]") -> None:
        """Detach specific blocks (their owner is about to unlink them)."""
        for name in list(names):
            block = self._blocks.pop(name, None)
            if block is not None:
                _close_block(block)

    def close(self) -> None:
        """Detach every cached block (never unlinks).  Idempotent."""
        for block in self._blocks.values():
            _close_block(block)
        self._blocks.clear()

    def __enter__(self) -> "ArenaReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
