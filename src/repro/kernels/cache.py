"""The descriptor match-count cache.

CBRD verification and repeated fleet rounds score the same image pairs
over and over: every round's queries are verified against the same
top-voted stored images, and the SSMM batch matrix revisits pairs the
server already verified.  Match counts are pure functions of the two
descriptor matrices, the kind, and the threshold, so they cache
perfectly.

Keys are built from **content fingerprints** (blake2b over the
descriptor bytes + shape + dtype), not from image ids alone: ids name a
cache entry for debuggability, but the fingerprint guarantees a stale
or reused id can never alias a different descriptor set — a cache hit
is byte-identical to recomputation by construction.  Keys are
canonically ordered, matching the symmetry of mutual matching.

The cache is a bounded LRU behind a lock, safe for the concurrent
fleet's device threads; hit-or-miss never changes a decision, so the
sequential/concurrent equivalence guarantee is untouched.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..errors import ConfigurationError
from ..obs.runtime import get_obs

#: Default entry budget.  A key is ~200 bytes and a value is one int,
#: so the full cache stays well under a megabyte while covering many
#: fleet rounds of verify pairs.
DEFAULT_CACHE_ENTRIES = 8192

#: One cache key: (kind, threshold, (id_a, digest_a), (id_b, digest_b)).
MatchKey = "tuple[str, float, tuple[str, bytes], tuple[str, bytes]]"


def descriptor_fingerprint(descriptors: np.ndarray) -> bytes:
    """A content digest of one descriptor matrix (bytes + shape + dtype)."""
    descriptors = np.ascontiguousarray(descriptors)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(descriptors.dtype).encode())
    digest.update(np.asarray(descriptors.shape, dtype=np.int64).tobytes())
    digest.update(descriptors.tobytes())
    return digest.digest()


def match_key(
    kind: str,
    threshold: float,
    id_a: str,
    descriptors_a: np.ndarray,
    id_b: str,
    descriptors_b: np.ndarray,
) -> "MatchKey":
    """The canonical (symmetric) cache key for one scored pair."""
    side_a = (id_a, descriptor_fingerprint(descriptors_a))
    side_b = (id_b, descriptor_fingerprint(descriptors_b))
    first, second = sorted((side_a, side_b))
    return (kind, float(threshold), first, second)


class MatchCountCache:
    """A thread-safe LRU of ``match_key -> match count``."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, int]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: object) -> "int | None":
        """The cached count, refreshed to most-recently-used, or None."""
        with self._lock:
            count = self._entries.get(key)
            if count is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        obs = get_obs()
        if obs.enabled:
            obs.kernel_cache_events.inc(event="miss" if count is None else "hit")
        return count

    def put(self, key: object, count: int) -> None:
        """Store one count, evicting the least-recently-used past budget."""
        with self._lock:
            self._entries[key] = count
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> "dict[str, int]":
        """A snapshot of size and hit/miss counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


#: The process-wide cache the similarity layer consults.
_GLOBAL_CACHE = MatchCountCache()


def get_match_cache() -> MatchCountCache:
    """The process-wide match-count cache."""
    return _GLOBAL_CACHE


def set_match_cache(cache: MatchCountCache) -> MatchCountCache:
    """Swap the process-wide cache (tests); returns the previous one."""
    global _GLOBAL_CACHE
    previous = _GLOBAL_CACHE
    _GLOBAL_CACHE = cache
    return previous
