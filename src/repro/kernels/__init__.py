"""``repro.kernels`` — the vectorized similarity kernel layer.

The single implementation of the hot paths every BEES decision bottoms
out in:

* :mod:`~repro.kernels.hamming` — blocked uint64 Hamming distances
  (``np.bitwise_count`` or a SWAR fallback);
* :mod:`~repro.kernels.voting` — deduplicated LSH bucket storage with
  ``bincount`` vote aggregation (queries group their keys once via
  :func:`~repro.kernels.voting.group_query_keys`; every shard gathers
  from the shared grouped form);
* :mod:`~repro.kernels.arena` — append-only shared-memory byte arenas
  the process-parallel index stores bit-packed descriptors in, so the
  Hamming kernel reads worker-resident rows zero-copy;
* :mod:`~repro.kernels.majority` — the bit-plane byte-wise majority
  vote behind k-replica forward redundancy
  (:mod:`repro.network.transfer`);
* :mod:`~repro.kernels.cache` — the LRU match-count cache keyed by
  content fingerprints;
* :mod:`~repro.kernels.batch` — the batched all-pairs SSMM similarity
  matrix (import as ``repro.kernels.batch``: it builds on
  :mod:`repro.features`, which itself uses the kernels above, so the
  package namespace stays a leaf of that layering).

Everything here is exact: the kernels change evaluation strategy, never
results — ``tests/kernels`` proves each one byte-identical to the
pre-kernel reference implementations.
"""

from .arena import (
    ArenaReader,
    ArenaRef,
    SharedArena,
    as_matrix,
    attach_block,
    unlink_block,
)
from .cache import (
    DEFAULT_CACHE_ENTRIES,
    MatchCountCache,
    descriptor_fingerprint,
    get_match_cache,
    match_key,
    set_match_cache,
)
from .hamming import (
    BACKENDS,
    DEFAULT_BACKEND,
    hamming_distance_matrix,
    hamming_distance_matrix_u64,
    pack_rows_u64,
    popcount_u64,
)
from .majority import majority_vote_bytes, majority_vote_stats
from .voting import BucketStore, group_query_keys

__all__ = [
    "ArenaReader",
    "ArenaRef",
    "BACKENDS",
    "BucketStore",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_ENTRIES",
    "MatchCountCache",
    "SharedArena",
    "as_matrix",
    "attach_block",
    "descriptor_fingerprint",
    "get_match_cache",
    "group_query_keys",
    "hamming_distance_matrix",
    "hamming_distance_matrix_u64",
    "majority_vote_bytes",
    "majority_vote_stats",
    "match_key",
    "pack_rows_u64",
    "popcount_u64",
    "set_match_cache",
    "unlink_block",
]
