"""BEES: Bandwidth- and Energy-Efficient Image Sharing — a reproduction.

Reproduces Zuo, Hua, Liu, Feng, Xia, Cao, Wu, Sun, Guo, *BEES:
Bandwidth- and Energy-Efficient Image Sharing for Real-Time Situation
Awareness* (ICDCS 2017), including every substrate the prototype
depends on: an OpenCV-free feature stack (ORB/SIFT/PCA-SIFT), a
JPEG-style codec, SSIM, an LSH feature index, and smartphone
battery/radio/network simulation.

Quickstart::

    from repro import BeesScheme, Smartphone, build_server
    from repro.datasets import DisasterDataset

    batch = DisasterDataset().make_batch(n_images=20, n_inbatch_similar=3)
    scheme = BeesScheme()
    report = scheme.process_batch(Smartphone(), build_server(scheme), batch)
    print(report.n_uploaded, "of", report.n_images, "images uploaded")
"""

from .baselines import DirectUpload, Mrc, SharingScheme, SmartEye, make_bees_ea
from .core import BeesConfig, BeesScheme, BeesServer
from .energy import Battery, DeviceProfile, EnergyMeter
from .errors import BeesError
from .imaging import Image, SceneGenerator
from .obs import Observability, Tracer
from .obs import configure as configure_observability
from .obs import disable as disable_observability
from .obs import get_obs as get_observability
from .sim import (
    CoverageExperiment,
    LifetimeExperiment,
    Smartphone,
    UploadSession,
    build_server,
)

__version__ = "1.0.0"

__all__ = [
    "Battery",
    "BeesConfig",
    "BeesError",
    "BeesScheme",
    "BeesServer",
    "CoverageExperiment",
    "DeviceProfile",
    "DirectUpload",
    "EnergyMeter",
    "Image",
    "LifetimeExperiment",
    "Mrc",
    "Observability",
    "SceneGenerator",
    "SharingScheme",
    "SmartEye",
    "Smartphone",
    "Tracer",
    "UploadSession",
    "__version__",
    "build_server",
    "configure_observability",
    "disable_observability",
    "get_observability",
    "make_bees_ea",
]
