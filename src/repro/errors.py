"""Exception hierarchy for the BEES reproduction.

Every error raised by the library derives from :class:`BeesError`, so a
caller can catch the whole family with one ``except`` clause while still
being able to distinguish configuration mistakes from runtime failures.
"""

from __future__ import annotations


class BeesError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(BeesError):
    """An invalid parameter or policy configuration was supplied."""


class ImageError(BeesError):
    """An image bitmap is malformed (wrong dtype, empty, bad shape...)."""


class CodecError(BeesError):
    """Encoding or decoding an image failed."""


class FeatureError(BeesError):
    """Feature extraction or matching was given invalid input."""


class IndexError_(BeesError):
    """A feature-index operation failed (duplicate id, unknown id...)."""


class EnergyError(BeesError):
    """A battery or energy-accounting operation is invalid."""


class NetworkError(BeesError):
    """A network transfer could not be carried out."""


class SimulationError(BeesError):
    """An end-to-end simulation was configured or driven incorrectly."""


class DatasetError(BeesError):
    """A synthetic dataset request was invalid."""


class ObservabilityError(BeesError):
    """A tracing or metrics operation was misused (bad labels, ...)."""


class BenchError(BeesError):
    """A benchmark case, artifact, or comparison is invalid."""
