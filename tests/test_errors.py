"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.ImageError,
    errors.CodecError,
    errors.FeatureError,
    errors.IndexError_,
    errors.EnergyError,
    errors.NetworkError,
    errors.SimulationError,
    errors.DatasetError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_all_derive_from_bees_error(self, error_cls):
        assert issubclass(error_cls, errors.BeesError)

    def test_bees_error_is_an_exception(self):
        assert issubclass(errors.BeesError, Exception)

    def test_one_except_clause_catches_everything(self):
        for error_cls in ALL_ERRORS:
            with pytest.raises(errors.BeesError):
                raise error_cls("boom")

    def test_index_error_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)

    def test_library_raises_only_its_own_family(self):
        """Spot check: invalid inputs surface as BeesError subclasses,
        never as bare ValueError/TypeError."""
        from repro.core.policies import eac_policy
        from repro.energy import Battery
        from repro.imaging.bitmap import validate_proportion

        with pytest.raises(errors.BeesError):
            validate_proportion(7.0)
        with pytest.raises(errors.BeesError):
            Battery(capacity_joules=-1.0)
        with pytest.raises(errors.BeesError):
            eac_policy()(5.0)
