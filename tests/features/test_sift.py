"""Tests for the simplified SIFT extractor."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.sift import DESCRIPTOR_DIM, SiftExtractor
from repro.features.similarity import jaccard_similarity
from repro.imaging.image import Image


@pytest.fixture(scope="module")
def sift_features(sift, scene_image):
    return sift.extract(scene_image)


class TestExtraction:
    def test_descriptor_dim(self, sift_features):
        assert sift_features.descriptors.shape[1] == DESCRIPTOR_DIM
        assert sift_features.descriptors.dtype == np.float32

    def test_kind(self, sift_features):
        assert sift_features.kind == "sift"

    def test_descriptors_normalised(self, sift_features):
        norms = np.linalg.norm(sift_features.descriptors, axis=1)
        assert np.allclose(norms[norms > 0], 1.0, atol=1e-3)

    def test_descriptors_clipped(self, sift_features):
        # After clipping at 0.2 and renormalising, components stay in
        # [0, 1]; the bulk should sit well below the clip ceiling.
        desc = sift_features.descriptors
        assert desc.min() >= 0.0
        assert desc.max() <= 1.0
        assert float((desc > 0.25).mean()) < 0.2

    def test_finds_keypoints(self, sift_features):
        assert len(sift_features) > 10

    def test_deterministic(self, sift, scene_image):
        a = sift.extract(scene_image)
        b = sift.extract(scene_image)
        assert np.array_equal(a.descriptors, b.descriptors)

    def test_pixels_processed_counts_scale_space(self, sift_features, scene_image):
        # Each octave processes scales_per_octave + 3 blurred planes.
        assert sift_features.pixels_processed > scene_image.pixels * 3

    def test_flat_image_no_features(self, sift):
        flat = Image(bitmap=np.full((80, 80, 3), 127, dtype=np.uint8))
        assert len(sift.extract(flat)) == 0

    def test_max_features_enforced(self, scene_image):
        small = SiftExtractor(max_features=5)
        assert len(small.extract(scene_image)) <= 5


class TestInvariance:
    def test_same_scene_similarity(self, sift, scene_image, scene_image_alt_view):
        a = sift.extract(scene_image)
        b = sift.extract(scene_image_alt_view)
        assert jaccard_similarity(a, b) > 0.15

    def test_cross_scene_dissimilarity(self, sift, scene_image, other_scene_image):
        a = sift.extract(scene_image)
        c = sift.extract(other_scene_image)
        assert jaccard_similarity(a, c) < 0.1


class TestValidation:
    def test_rejects_bad_max_features(self):
        with pytest.raises(FeatureError):
            SiftExtractor(max_features=0)

    def test_rejects_bad_octaves(self):
        with pytest.raises(FeatureError):
            SiftExtractor(n_octaves=0)
