"""Tests for the FAST detector and keypoint machinery."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.keypoints import (
    FAST_CIRCLE,
    Keypoints,
    detect_fast,
    fast_corner_mask,
    harris_response,
    intensity_centroid_angles,
)


def _corner_plane(h=40, w=40):
    """A bright rectangle on dark background — four strong corners."""
    plane = np.zeros((h, w))
    plane[10:30, 10:30] = 200.0
    return plane


class TestCircle:
    def test_sixteen_offsets(self):
        assert len(FAST_CIRCLE) == 16

    def test_offsets_unique(self):
        assert len(set(FAST_CIRCLE)) == 16

    def test_radius_three(self):
        for dy, dx in FAST_CIRCLE:
            assert 2.8 <= np.hypot(dy, dx) <= 3.3


class TestFastCornerMask:
    def test_detects_rectangle_corners(self):
        mask, _ = fast_corner_mask(_corner_plane(), threshold=20.0)
        ys, xs = np.nonzero(mask)
        # Hits should cluster near the four rectangle corners.
        assert len(ys) > 0
        corners = [(10, 10), (10, 29), (29, 10), (29, 29)]
        for y, x in zip(ys, xs):
            assert min(abs(y - cy) + abs(x - cx) for cy, cx in corners) <= 4

    def test_flat_plane_no_corners(self):
        mask, _ = fast_corner_mask(np.full((30, 30), 100.0), threshold=10.0)
        assert not mask.any()

    def test_straight_edge_no_corners(self):
        plane = np.zeros((30, 30))
        plane[:, 15:] = 200.0
        mask, _ = fast_corner_mask(plane, threshold=20.0)
        # A long straight edge passes at most a sliver near the borders.
        assert mask.sum() == 0

    def test_dark_corner_detected(self):
        plane = 200.0 - _corner_plane()  # dark square on bright ground
        mask, _ = fast_corner_mask(plane, threshold=20.0)
        assert mask.any()

    def test_score_positive_on_corners(self):
        mask, score = fast_corner_mask(_corner_plane(), threshold=20.0)
        assert (score[mask] > 0).all()
        assert (score[~mask] == 0).all()

    def test_border_never_corner(self):
        mask, _ = fast_corner_mask(_corner_plane(), threshold=20.0)
        assert not mask[:3].any() and not mask[-3:].any()
        assert not mask[:, :3].any() and not mask[:, -3:].any()

    def test_tiny_plane_ok(self):
        mask, _ = fast_corner_mask(np.zeros((4, 4)), threshold=10.0)
        assert not mask.any()

    def test_rejects_bad_threshold(self):
        with pytest.raises(FeatureError):
            fast_corner_mask(_corner_plane(), threshold=0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            fast_corner_mask(np.zeros((4, 4, 3)), threshold=10.0)


class TestHarris:
    def test_corner_scores_above_edge(self):
        plane = _corner_plane()
        response = harris_response(plane)
        corner_score = response[10, 10]
        edge_score = response[20, 10]  # middle of the vertical edge
        assert corner_score > edge_score

    def test_flat_plane_zero(self):
        assert np.allclose(harris_response(np.full((20, 20), 50.0)), 0.0)


class TestOrientation:
    def test_gradient_points_toward_mass(self):
        # Bright half below the keypoint -> centroid points down (+y).
        plane = np.zeros((31, 31))
        plane[16:, :] = 200.0
        angles = intensity_centroid_angles(plane, np.array([15.0]), np.array([15.0]))
        assert np.sin(angles[0]) > 0.5

    def test_rotation_consistency(self):
        plane = np.zeros((31, 31))
        plane[:, 16:] = 200.0  # bright right half -> +x direction
        angles = intensity_centroid_angles(plane, np.array([15.0]), np.array([15.0]))
        assert abs(np.cos(angles[0])) > 0.5 and np.cos(angles[0]) > 0

    def test_empty_input(self):
        out = intensity_centroid_angles(np.zeros((10, 10)), np.zeros(0), np.zeros(0))
        assert out.shape == (0,)


class TestDetectFast:
    def test_detects_and_ranks(self):
        kps = detect_fast(_corner_plane(), threshold=20.0, max_keypoints=10)
        assert 1 <= len(kps) <= 10
        # Responses sorted descending.
        assert np.all(np.diff(kps.responses) <= 1e-9)

    def test_max_keypoints_enforced(self, generator):
        plane = generator.view(50, 0).gray()
        kps = detect_fast(plane, max_keypoints=5)
        assert len(kps) <= 5

    def test_border_margin_respected(self):
        kps = detect_fast(_corner_plane(), threshold=20.0, border=12)
        for y, x in zip(kps.ys, kps.xs):
            assert 12 <= y < 28 and 12 <= x < 28

    def test_oversized_border_empty(self):
        kps = detect_fast(_corner_plane(), threshold=20.0, border=25)
        assert len(kps) == 0

    def test_angles_assigned(self, generator):
        plane = generator.view(50, 0).gray()
        kps = detect_fast(plane)
        assert len(kps.angles) == len(kps)
        assert np.isfinite(kps.angles).all()

    def test_rejects_bad_max_keypoints(self):
        with pytest.raises(FeatureError):
            detect_fast(_corner_plane(), max_keypoints=0)

    def test_empty_class_method(self):
        empty = Keypoints.empty()
        assert len(empty) == 0
