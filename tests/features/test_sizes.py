"""Tests for feature space-overhead accounting (Table I)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FeatureError
from repro.features.base import KEYPOINT_BYTES
from repro.features.sizes import (
    DESCRIPTOR_BYTES,
    NOMINAL_FEATURE_CAP,
    feature_bytes,
    nominal_feature_bytes,
    nominal_feature_count,
    space_overheads,
)


class TestDescriptorBytes:
    def test_sift_is_512(self):
        assert DESCRIPTOR_BYTES["sift"] == 512

    def test_pca_sift_is_144(self):
        assert DESCRIPTOR_BYTES["pca-sift"] == 144

    def test_orb_is_32(self):
        assert DESCRIPTOR_BYTES["orb"] == 32

    def test_orb_two_orders_below_sift(self):
        assert DESCRIPTOR_BYTES["sift"] / DESCRIPTOR_BYTES["orb"] == 16

    def test_pca_quarter_of_sift(self):
        # Table I: PCA-SIFT ~25% of SIFT.
        assert DESCRIPTOR_BYTES["pca-sift"] / DESCRIPTOR_BYTES["sift"] == pytest.approx(
            0.28, abs=0.05
        )


class TestFeatureBytes:
    def test_includes_keypoint_geometry(self):
        assert feature_bytes("orb", 10) == 10 * (32 + KEYPOINT_BYTES)

    def test_zero_features(self):
        assert feature_bytes("sift", 0) == 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(FeatureError):
            feature_bytes("surf", 5)

    def test_rejects_negative_count(self):
        with pytest.raises(FeatureError):
            feature_bytes("orb", -1)


class TestNominalCounts:
    def test_density_extrapolation(self):
        # 100 features on a 19,200 px bitmap -> density ~5.2e-3; a
        # 48,000 px photo yields 250.
        assert nominal_feature_count(100, 19200, 48000) == 250

    def test_cap_applied(self):
        assert nominal_feature_count(100, 100, 10**7) == NOMINAL_FEATURE_CAP

    def test_zero_detected(self):
        assert nominal_feature_count(0, 1000, 10**6) == 0

    def test_rejects_bad_pixels(self):
        with pytest.raises(FeatureError):
            nominal_feature_count(10, 0, 100)

    @given(
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=100, max_value=10**6),
        st.integers(min_value=100, max_value=10**7),
    )
    def test_count_bounded_by_cap(self, detected, bitmap_px, nominal_px):
        assert 0 <= nominal_feature_count(detected, bitmap_px, nominal_px) <= NOMINAL_FEATURE_CAP

    def test_nominal_bytes(self):
        expected = nominal_feature_count(100, 19200, 48000) * (32 + KEYPOINT_BYTES)
        assert nominal_feature_bytes("orb", 100, 19200, 48000) == expected


class TestSpaceOverheads:
    def test_normalised_to_sift(self):
        rows = space_overheads({"sift": 500, "pca-sift": 500, "orb": 400}, 100)
        by_kind = {row.kind: row for row in rows}
        assert by_kind["sift"].fraction_of_sift == pytest.approx(1.0)
        assert by_kind["pca-sift"].fraction_of_sift < 0.35
        assert by_kind["orb"].fraction_of_sift < 0.07

    def test_requires_sift_entry(self):
        with pytest.raises(FeatureError):
            space_overheads({"orb": 100}, 10)

    def test_rejects_bad_image_count(self):
        with pytest.raises(FeatureError):
            space_overheads({"sift": 100}, 0)
