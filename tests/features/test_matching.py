"""Tests for descriptor matching."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FeatureError
from repro.features.matching import (
    hamming_distance_matrix,
    l2_distance_matrix,
    match_count,
    mutual_matches,
)


class TestHamming:
    def test_zero_distance_for_identical(self):
        desc = np.array([[0xFF, 0x00, 0xAA]], dtype=np.uint8)
        assert hamming_distance_matrix(desc, desc)[0, 0] == 0

    def test_counts_bit_flips(self):
        a = np.array([[0b00000000]], dtype=np.uint8)
        b = np.array([[0b00000111]], dtype=np.uint8)
        assert hamming_distance_matrix(a, b)[0, 0] == 3

    def test_matrix_shape(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (5, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (7, 32)).astype(np.uint8)
        assert hamming_distance_matrix(a, b).shape == (5, 7)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (6, 32)).astype(np.uint8)
        dist = hamming_distance_matrix(a, a)
        assert np.array_equal(dist, dist.T)

    def test_max_distance(self):
        a = np.zeros((1, 32), dtype=np.uint8)
        b = np.full((1, 32), 255, dtype=np.uint8)
        assert hamming_distance_matrix(a, b)[0, 0] == 256

    def test_rejects_mismatched_width(self):
        with pytest.raises(FeatureError):
            hamming_distance_matrix(
                np.zeros((2, 32), dtype=np.uint8), np.zeros((2, 16), dtype=np.uint8)
            )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_pairs_concentrate_near_half(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (4, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (4, 32)).astype(np.uint8)
        dist = hamming_distance_matrix(a, b)
        # Random 256-bit strings differ in ~128 bits (binomial, sd=8).
        assert dist.min() > 70
        assert dist.max() < 190


class TestL2:
    def test_zero_for_identical(self):
        a = np.array([[1.0, 2.0, 3.0]])
        assert l2_distance_matrix(a, a)[0, 0] == pytest.approx(0.0)

    def test_known_distance(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert l2_distance_matrix(a, b)[0, 0] == pytest.approx(5.0)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 8))
        assert (l2_distance_matrix(a, a) >= 0).all()


class TestMutualMatches:
    def test_perfect_diagonal(self):
        dist = np.array([[0.0, 9.0], [9.0, 0.0]])
        matches = mutual_matches(dist, threshold=1.0)
        assert matches.tolist() == [[0, 0], [1, 1]]

    def test_threshold_excludes(self):
        dist = np.array([[5.0, 9.0], [9.0, 5.0]])
        assert mutual_matches(dist, threshold=1.0).shape == (0, 2)

    def test_non_mutual_excluded(self):
        # Row 0 and row 1 both prefer column 0; only one can be mutual.
        dist = np.array([[1.0, 8.0], [2.0, 8.0]])
        matches = mutual_matches(dist, threshold=10.0, ratio=1.0)
        assert len(matches) <= 1

    def test_ratio_test_rejects_ambiguous(self):
        # Best and second-best nearly equal -> ambiguous.
        dist = np.array([[1.0, 1.05]])
        assert mutual_matches(dist, threshold=10.0, ratio=0.7).shape == (0, 2)
        assert mutual_matches(dist, threshold=10.0, ratio=1.0).shape == (1, 2)

    def test_single_column_skips_ratio(self):
        dist = np.array([[1.0], [5.0]])
        matches = mutual_matches(dist, threshold=10.0, ratio=0.7)
        assert len(matches) == 1

    def test_empty_input(self):
        assert mutual_matches(np.zeros((0, 0)), threshold=1.0).shape == (0, 2)

    def test_rejects_bad_ratio(self):
        with pytest.raises(FeatureError):
            mutual_matches(np.zeros((2, 2)), threshold=1.0, ratio=0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            mutual_matches(np.zeros(4), threshold=1.0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_each_index_matched_at_most_once(self, seed):
        rng = np.random.default_rng(seed)
        dist = rng.uniform(0, 10, (8, 6))
        matches = mutual_matches(dist, threshold=10.0, ratio=1.0)
        rows = matches[:, 0].tolist()
        cols = matches[:, 1].tolist()
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))


class TestMatchCount:
    def test_empty_sets(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        assert match_count(empty, empty, "orb") == 0

    def test_identical_orb_sets_all_match(self):
        rng = np.random.default_rng(0)
        desc = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        assert match_count(desc, desc, "orb") == 10

    def test_unknown_kind_rejected(self):
        desc = np.zeros((2, 32), dtype=np.uint8)
        with pytest.raises(FeatureError):
            match_count(desc, desc, "surf")

    def test_explicit_threshold_respected(self):
        a = np.zeros((1, 32), dtype=np.uint8)
        b = np.zeros((1, 32), dtype=np.uint8)
        b[0, 0] = 0b00001111  # distance 4
        assert match_count(a, b, "orb", threshold=3) == 0
        assert match_count(a, b, "orb", threshold=4) == 1
