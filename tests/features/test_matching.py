"""Tests for descriptor matching."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FeatureError
from repro.features.base import FeatureSet
from repro.features.matching import (
    DEFAULT_HAMMING_THRESHOLD,
    L2_THRESHOLDS,
    cached_match_count,
    hamming_distance_matrix,
    l2_distance_matrix,
    match_count,
    mutual_matches,
    resolve_threshold,
)
from repro.kernels.cache import MatchCountCache


class TestHamming:
    def test_zero_distance_for_identical(self):
        desc = np.array([[0xFF, 0x00, 0xAA]], dtype=np.uint8)
        assert hamming_distance_matrix(desc, desc)[0, 0] == 0

    def test_counts_bit_flips(self):
        a = np.array([[0b00000000]], dtype=np.uint8)
        b = np.array([[0b00000111]], dtype=np.uint8)
        assert hamming_distance_matrix(a, b)[0, 0] == 3

    def test_matrix_shape(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (5, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (7, 32)).astype(np.uint8)
        assert hamming_distance_matrix(a, b).shape == (5, 7)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (6, 32)).astype(np.uint8)
        dist = hamming_distance_matrix(a, a)
        assert np.array_equal(dist, dist.T)

    def test_max_distance(self):
        a = np.zeros((1, 32), dtype=np.uint8)
        b = np.full((1, 32), 255, dtype=np.uint8)
        assert hamming_distance_matrix(a, b)[0, 0] == 256

    def test_rejects_mismatched_width(self):
        with pytest.raises(FeatureError):
            hamming_distance_matrix(
                np.zeros((2, 32), dtype=np.uint8), np.zeros((2, 16), dtype=np.uint8)
            )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_pairs_concentrate_near_half(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (4, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (4, 32)).astype(np.uint8)
        dist = hamming_distance_matrix(a, b)
        # Random 256-bit strings differ in ~128 bits (binomial, sd=8).
        assert dist.min() > 70
        assert dist.max() < 190


class TestL2:
    def test_zero_for_identical(self):
        a = np.array([[1.0, 2.0, 3.0]])
        assert l2_distance_matrix(a, a)[0, 0] == pytest.approx(0.0)

    def test_known_distance(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert l2_distance_matrix(a, b)[0, 0] == pytest.approx(5.0)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 8))
        assert (l2_distance_matrix(a, a) >= 0).all()


class TestMutualMatches:
    def test_perfect_diagonal(self):
        dist = np.array([[0.0, 9.0], [9.0, 0.0]])
        matches = mutual_matches(dist, threshold=1.0)
        assert matches.tolist() == [[0, 0], [1, 1]]

    def test_threshold_excludes(self):
        dist = np.array([[5.0, 9.0], [9.0, 5.0]])
        assert mutual_matches(dist, threshold=1.0).shape == (0, 2)

    def test_non_mutual_excluded(self):
        # Row 0 and row 1 both prefer column 0; only one can be mutual.
        dist = np.array([[1.0, 8.0], [2.0, 8.0]])
        matches = mutual_matches(dist, threshold=10.0, ratio=1.0)
        assert len(matches) <= 1

    def test_ratio_test_rejects_ambiguous(self):
        # Best and second-best nearly equal -> ambiguous.
        dist = np.array([[1.0, 1.05]])
        assert mutual_matches(dist, threshold=10.0, ratio=0.7).shape == (0, 2)
        assert mutual_matches(dist, threshold=10.0, ratio=1.0).shape == (1, 2)

    def test_single_column_skips_ratio(self):
        dist = np.array([[1.0], [5.0]])
        matches = mutual_matches(dist, threshold=10.0, ratio=0.7)
        assert len(matches) == 1

    def test_empty_input(self):
        assert mutual_matches(np.zeros((0, 0)), threshold=1.0).shape == (0, 2)

    def test_rejects_bad_ratio(self):
        with pytest.raises(FeatureError):
            mutual_matches(np.zeros((2, 2)), threshold=1.0, ratio=0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            mutual_matches(np.zeros(4), threshold=1.0)

    def test_single_row_ratio_still_applies(self):
        # One query descriptor, many candidates: the row-wise ratio test
        # has a second-best to compare against and must still run.
        clear = np.array([[1.0, 9.0, 9.0]])
        ambiguous = np.array([[1.0, 1.05, 9.0]])
        assert mutual_matches(clear, threshold=10.0, ratio=0.7).tolist() == [[0, 0]]
        assert mutual_matches(ambiguous, threshold=10.0, ratio=0.7).shape == (0, 2)

    def test_single_column_ratio_uses_column_direction(self):
        # One candidate, many queries: the row-wise test has nothing to
        # compare, but the column-wise second-best still disambiguates.
        clear = np.array([[1.0], [9.0]])
        ambiguous = np.array([[1.0], [1.05]])
        assert mutual_matches(clear, threshold=10.0, ratio=0.7).tolist() == [[0, 0]]
        assert mutual_matches(ambiguous, threshold=10.0, ratio=0.7).shape == (0, 2)

    def test_one_by_one_skips_ratio_both_ways(self):
        dist = np.array([[2.0]])
        assert mutual_matches(dist, threshold=3.0, ratio=0.7).tolist() == [[0, 0]]
        assert mutual_matches(dist, threshold=1.0, ratio=0.7).shape == (0, 2)

    def test_all_equal_distances(self):
        # Every pairing is equally good: with the ratio test on, all are
        # ambiguous; with ratio 1.0, exactly one mutual pair survives
        # (argmin ties break to the first index on both axes).
        dist = np.full((3, 3), 5.0)
        assert mutual_matches(dist, threshold=10.0, ratio=0.7).shape == (0, 2)
        assert mutual_matches(dist, threshold=10.0, ratio=1.0).tolist() == [[0, 0]]
        assert mutual_matches(dist, threshold=4.0, ratio=1.0).shape == (0, 2)

    def test_threshold_boundary_is_inclusive(self):
        at = np.array([[float(DEFAULT_HAMMING_THRESHOLD)]])
        over = np.array([[float(DEFAULT_HAMMING_THRESHOLD + 1)]])
        assert len(mutual_matches(at, threshold=DEFAULT_HAMMING_THRESHOLD)) == 1
        assert len(mutual_matches(over, threshold=DEFAULT_HAMMING_THRESHOLD)) == 0

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_each_index_matched_at_most_once(self, seed):
        rng = np.random.default_rng(seed)
        dist = rng.uniform(0, 10, (8, 6))
        matches = mutual_matches(dist, threshold=10.0, ratio=1.0)
        rows = matches[:, 0].tolist()
        cols = matches[:, 1].tolist()
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))


class TestMatchCount:
    def test_empty_sets(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        assert match_count(empty, empty, "orb") == 0

    def test_identical_orb_sets_all_match(self):
        rng = np.random.default_rng(0)
        desc = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        assert match_count(desc, desc, "orb") == 10

    def test_unknown_kind_rejected(self):
        desc = np.zeros((2, 32), dtype=np.uint8)
        with pytest.raises(FeatureError):
            match_count(desc, desc, "surf")

    def test_explicit_threshold_respected(self):
        a = np.zeros((1, 32), dtype=np.uint8)
        b = np.zeros((1, 32), dtype=np.uint8)
        b[0, 0] = 0b00001111  # distance 4
        assert match_count(a, b, "orb", threshold=3) == 0
        assert match_count(a, b, "orb", threshold=4) == 1

    def test_default_threshold_boundary(self):
        # A pair at distance exactly DEFAULT_HAMMING_THRESHOLD matches;
        # one bit past it does not.
        a = np.zeros((1, 32), dtype=np.uint8)
        at = np.packbits(
            np.r_[np.ones(DEFAULT_HAMMING_THRESHOLD, np.uint8), np.zeros(256 - DEFAULT_HAMMING_THRESHOLD, np.uint8)]
        )[None, :]
        over = np.packbits(
            np.r_[np.ones(DEFAULT_HAMMING_THRESHOLD + 1, np.uint8), np.zeros(255 - DEFAULT_HAMMING_THRESHOLD, np.uint8)]
        )[None, :]
        assert match_count(a, at, "orb") == 1
        assert match_count(a, over, "orb") == 0


class TestResolveThreshold:
    def test_defaults_per_kind(self):
        assert resolve_threshold("orb", None) == DEFAULT_HAMMING_THRESHOLD
        for kind, limit in L2_THRESHOLDS.items():
            assert resolve_threshold(kind, None) == limit

    def test_explicit_override(self):
        assert resolve_threshold("orb", 12) == 12.0
        assert resolve_threshold("sift", 0.1) == 0.1

    def test_unknown_kind(self):
        with pytest.raises(FeatureError):
            resolve_threshold("surf", None)


def _feature_set(image_id, seed, kind="orb", n=8):
    rng = np.random.default_rng(seed)
    descriptors = rng.integers(0, 256, (n, 32)).astype(np.uint8)
    return FeatureSet(
        kind=kind,
        descriptors=descriptors,
        xs=np.zeros(n, dtype=np.float32),
        ys=np.zeros(n, dtype=np.float32),
        pixels_processed=n,
        image_id=image_id,
    )


class TestCachedMatchCount:
    def test_hit_equals_recomputation(self):
        cache = MatchCountCache()
        a, b = _feature_set("a", 0), _feature_set("b", 1)
        cold = cached_match_count(a, b, cache=cache)
        warm = cached_match_count(a, b, cache=cache)
        assert cold == warm == match_count(a.descriptors, b.descriptors, "orb")
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_symmetric_key_shares_entry(self):
        cache = MatchCountCache()
        a, b = _feature_set("a", 0), _feature_set("b", 1)
        cached_match_count(a, b, cache=cache)
        cached_match_count(b, a, cache=cache)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_content_change_misses_despite_same_id(self):
        cache = MatchCountCache()
        a, b = _feature_set("a", 0), _feature_set("b", 1)
        cached_match_count(a, b, cache=cache)
        changed = _feature_set("a", 7)  # same id, different descriptors
        cached_match_count(changed, b, cache=cache)
        assert cache.stats()["entries"] == 2

    def test_empty_sides_bypass_cache(self):
        cache = MatchCountCache()
        empty = _feature_set("e", 0, n=0)
        full = _feature_set("f", 1)
        assert cached_match_count(empty, full, cache=cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_kind_mismatch_rejected(self):
        with pytest.raises(FeatureError):
            cached_match_count(
                _feature_set("a", 0, kind="orb"), _feature_set("b", 1, kind="sift")
            )
