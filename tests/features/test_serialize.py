"""Tests for feature wire serialization."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.base import FeatureSet
from repro.features.serialize import (
    deserialize_features,
    deserialize_features_view,
    serialize_features,
)


def _roundtrip(features):
    return deserialize_features(serialize_features(features))


class TestRoundTrip:
    def test_orb(self, orb_features):
        restored = _roundtrip(orb_features)
        assert restored.kind == "orb"
        assert restored.image_id == orb_features.image_id
        assert np.array_equal(restored.descriptors, orb_features.descriptors)
        assert np.allclose(restored.xs, orb_features.xs, atol=1e-4)
        assert restored.pixels_processed == orb_features.pixels_processed

    def test_sift(self, sift, scene_image):
        features = sift.extract(scene_image)
        restored = _roundtrip(features)
        assert restored.kind == "sift"
        assert np.allclose(restored.descriptors, features.descriptors)

    def test_pca_sift(self, pca_sift, scene_image):
        features = pca_sift.extract(scene_image)
        restored = _roundtrip(features)
        assert restored.kind == "pca-sift"
        assert restored.descriptors.shape == features.descriptors.shape

    def test_empty_feature_set(self):
        empty = FeatureSet(
            kind="orb",
            descriptors=np.zeros((0, 32), dtype=np.uint8),
            xs=np.zeros(0),
            ys=np.zeros(0),
            pixels_processed=5,
            image_id="empty",
        )
        restored = _roundtrip(empty)
        assert len(restored) == 0
        assert restored.image_id == "empty"

    def test_payload_size_matches_content(self, orb_features):
        payload = serialize_features(orb_features)
        n = len(orb_features)
        # header(7) + id + counts(16) + coords(8n) + descriptors(32n).
        expected = 7 + len(orb_features.image_id) + 16 + 8 * n + 32 * n
        assert len(payload) == expected


class TestZeroCopyView:
    def test_view_decodes_like_the_copying_path(self, orb_features):
        payload = serialize_features(orb_features)
        viewed = deserialize_features_view(payload)
        copied = deserialize_features(payload)
        assert viewed.kind == copied.kind
        assert viewed.image_id == copied.image_id
        assert viewed.pixels_processed == copied.pixels_processed
        assert np.array_equal(viewed.descriptors, copied.descriptors)
        assert np.array_equal(viewed.xs, copied.xs)
        assert np.array_equal(viewed.ys, copied.ys)

    def test_view_shares_the_payload_buffer(self, orb_features):
        payload = bytearray(serialize_features(orb_features))
        viewed = deserialize_features_view(payload)
        descriptors_offset = len(payload) - viewed.descriptors.nbytes
        payload[descriptors_offset] ^= 0xFF
        assert viewed.descriptors.flat[0] == payload[descriptors_offset]

    def test_copying_path_detaches_from_the_payload(self, orb_features):
        payload = bytearray(serialize_features(orb_features))
        copied = deserialize_features(bytes(payload))
        first = int(copied.descriptors.flat[0])
        payload[len(payload) - copied.descriptors.nbytes] ^= 0xFF
        assert copied.descriptors.flat[0] == first

    def test_view_accepts_a_uint8_array(self, orb_features):
        buffer = np.frombuffer(serialize_features(orb_features), dtype=np.uint8)
        viewed = deserialize_features_view(buffer)
        assert viewed.image_id == orb_features.image_id
        assert np.array_equal(viewed.descriptors, orb_features.descriptors)


class TestValidation:
    def test_rejects_unknown_kind(self):
        bad = FeatureSet(
            kind="surf",
            descriptors=np.zeros((1, 8), dtype=np.uint8),
            xs=np.zeros(1),
            ys=np.zeros(1),
            pixels_processed=0,
        )
        with pytest.raises(FeatureError):
            serialize_features(bad)

    def test_rejects_bad_magic(self, orb_features):
        payload = bytearray(serialize_features(orb_features))
        payload[0] = 0
        with pytest.raises(FeatureError):
            deserialize_features(bytes(payload))

    def test_rejects_truncated(self, orb_features):
        payload = serialize_features(orb_features)
        with pytest.raises(FeatureError):
            deserialize_features(payload[: len(payload) // 2])

    def test_rejects_trailing_garbage(self, orb_features):
        payload = serialize_features(orb_features) + b"x"
        with pytest.raises(FeatureError):
            deserialize_features(payload)

    def test_rejects_empty_payload(self):
        with pytest.raises(FeatureError):
            deserialize_features(b"")
