"""Tests for MinHash descriptor-set sketches."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FeatureError
from repro.features.base import FeatureSet
from repro.features.minhash import DEFAULT_SKETCH_SIZE, MinHasher


def _orb_set(descriptors, image_id="x"):
    descriptors = np.asarray(descriptors, dtype=np.uint8)
    n = len(descriptors)
    return FeatureSet(
        kind="orb",
        descriptors=descriptors,
        xs=np.zeros(n),
        ys=np.zeros(n),
        pixels_processed=0,
        image_id=image_id,
    )


@pytest.fixture(scope="module")
def hasher():
    return MinHasher()


class TestSketching:
    def test_sketch_shape(self, hasher, rng):
        sketch = hasher.sketch(_orb_set(rng.integers(0, 256, (20, 32))))
        assert sketch.shape == (DEFAULT_SKETCH_SIZE,)

    def test_deterministic(self, hasher, rng):
        features = _orb_set(rng.integers(0, 256, (20, 32)))
        assert np.array_equal(hasher.sketch(features), hasher.sketch(features))

    def test_identical_sets_estimate_one(self, hasher, rng):
        features = _orb_set(rng.integers(0, 256, (20, 32)))
        sketch = hasher.sketch(features)
        assert hasher.estimate_similarity(sketch, sketch) == pytest.approx(1.0)

    def test_disjoint_sets_estimate_near_zero(self, hasher, rng):
        a = hasher.sketch(_orb_set(rng.integers(0, 256, (20, 32))))
        b = hasher.sketch(_orb_set(rng.integers(0, 256, (20, 32))))
        assert hasher.estimate_similarity(a, b) < 0.1

    def test_empty_sets(self, hasher):
        empty = hasher.sketch(_orb_set(np.zeros((0, 32))))
        assert hasher.estimate_similarity(empty, empty) == 0.0

    def test_rejects_non_orb(self, hasher):
        sift_like = FeatureSet(
            kind="sift",
            descriptors=np.zeros((2, 128), dtype=np.float32),
            xs=np.zeros(2),
            ys=np.zeros(2),
            pixels_processed=0,
        )
        with pytest.raises(FeatureError):
            hasher.sketch(sift_like)

    def test_rejects_bad_sketch_shape(self, hasher):
        with pytest.raises(FeatureError):
            hasher.estimate_similarity(np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.uint64))

    def test_rejects_bad_size(self):
        with pytest.raises(FeatureError):
            MinHasher(sketch_size=0)


class TestEstimationAccuracy:
    @given(st.integers(0, 10**6), st.integers(5, 40), st.integers(0, 40))
    @settings(max_examples=25)
    def test_estimate_tracks_token_jaccard(self, seed, n_shared, n_unique):
        """|estimate - exact| stays within a few standard errors."""
        rng = np.random.default_rng(seed)
        hasher = MinHasher(sketch_size=128)
        shared = rng.integers(0, 256, (n_shared, 32)).astype(np.uint8)
        only_a = rng.integers(0, 256, (n_unique, 32)).astype(np.uint8)
        only_b = rng.integers(0, 256, (n_unique, 32)).astype(np.uint8)
        a = _orb_set(np.vstack([shared, only_a]))
        b = _orb_set(np.vstack([shared, only_b]))
        exact = hasher.token_jaccard(a, b)
        estimate = hasher.estimate_similarity(hasher.sketch(a), hasher.sketch(b))
        standard_error = 1.0 / np.sqrt(128)
        assert abs(estimate - exact) <= 4 * standard_error

    def test_real_images_ranked_correctly(self, hasher, orb_features, orb_features_alt_view, orb_features_other):
        same = hasher.estimate_similarity(
            hasher.sketch(orb_features), hasher.sketch(orb_features_alt_view)
        )
        different = hasher.estimate_similarity(
            hasher.sketch(orb_features), hasher.sketch(orb_features_other)
        )
        assert same > different
