"""Tests for Equation-2 Jaccard similarity."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.base import FeatureSet
from repro.features.similarity import jaccard_similarity


def _orb_set(descriptors):
    n = len(descriptors)
    return FeatureSet(
        kind="orb",
        descriptors=np.asarray(descriptors, dtype=np.uint8),
        xs=np.zeros(n),
        ys=np.zeros(n),
        pixels_processed=100,
    )


class TestJaccard:
    def test_identical_sets_score_one(self, rng):
        desc = rng.integers(0, 256, (12, 32)).astype(np.uint8)
        a = _orb_set(desc)
        assert jaccard_similarity(a, a) == pytest.approx(1.0)

    def test_disjoint_sets_score_zero(self, rng):
        a = _orb_set(rng.integers(0, 256, (10, 32)))
        b = _orb_set(rng.integers(0, 256, (10, 32)))
        assert jaccard_similarity(a, b) < 0.05

    def test_both_empty_scores_zero(self):
        empty = _orb_set(np.zeros((0, 32)))
        assert jaccard_similarity(empty, empty) == 0.0

    def test_one_empty_scores_zero(self, rng):
        a = _orb_set(rng.integers(0, 256, (5, 32)))
        empty = _orb_set(np.zeros((0, 32)))
        assert jaccard_similarity(a, empty) == 0.0

    def test_half_overlap(self, rng):
        shared = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        only_a = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        only_b = rng.integers(0, 256, (10, 32)).astype(np.uint8)
        a = _orb_set(np.vstack([shared, only_a]))
        b = _orb_set(np.vstack([shared, only_b]))
        # |intersection| ~ 10, |union| ~ 30 -> ~1/3.
        assert jaccard_similarity(a, b) == pytest.approx(1 / 3, abs=0.08)

    def test_symmetric(self, orb_features, orb_features_alt_view):
        ab = jaccard_similarity(orb_features, orb_features_alt_view)
        ba = jaccard_similarity(orb_features_alt_view, orb_features)
        assert ab == pytest.approx(ba)

    def test_bounded(self, orb_features, orb_features_other):
        sim = jaccard_similarity(orb_features, orb_features_other)
        assert 0.0 <= sim <= 1.0

    def test_kind_mismatch_rejected(self, orb_features, sift, scene_image):
        sift_features = sift.extract(scene_image)
        with pytest.raises(FeatureError):
            jaccard_similarity(orb_features, sift_features)

    def test_threshold_passthrough(self, orb_features, orb_features_alt_view):
        strict = jaccard_similarity(orb_features, orb_features_alt_view, threshold=5)
        loose = jaccard_similarity(orb_features, orb_features_alt_view, threshold=60)
        assert strict <= loose
