"""Tests for the BRIEF sampling pattern machinery."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FeatureError
from repro.features.brief import (
    N_ANGLE_BINS,
    N_PAIRS,
    PATCH_RADIUS,
    angle_bins,
    pack_bits,
    rotated_patterns,
    sampling_pattern,
    unpack_bits,
)


class TestPattern:
    def test_shape(self):
        assert sampling_pattern().shape == (N_PAIRS, 2, 2)

    def test_deterministic(self):
        assert np.array_equal(sampling_pattern(), sampling_pattern())

    def test_clipped_to_patch(self):
        pattern = sampling_pattern()
        assert np.abs(pattern).max() <= PATCH_RADIUS

    def test_rejects_bad_args(self):
        with pytest.raises(FeatureError):
            sampling_pattern(n_pairs=0)
        with pytest.raises(FeatureError):
            sampling_pattern(patch_radius=1)


class TestRotation:
    def test_shape(self):
        rotated = rotated_patterns(sampling_pattern())
        assert rotated.shape == (N_ANGLE_BINS, N_PAIRS, 2, 2)

    def test_bin_zero_is_rounded_base(self):
        pattern = sampling_pattern()
        rotated = rotated_patterns(pattern)
        assert np.array_equal(rotated[0], np.rint(pattern).astype(np.int64))

    def test_rotation_preserves_radius(self):
        rotated = rotated_patterns(sampling_pattern())
        radii = np.hypot(rotated[..., 0], rotated[..., 1])
        base = np.hypot(rotated[0, ..., 0], rotated[0, ..., 1])
        # Rotation changes radius by at most rounding error.
        assert np.abs(radii - base[None]).max() <= 1.5

    def test_half_turn_negates(self):
        rotated = rotated_patterns(sampling_pattern(), n_bins=2)
        assert np.abs(rotated[1] + rotated[0]).max() <= 1.5

    def test_rejects_bad_bins(self):
        with pytest.raises(FeatureError):
            rotated_patterns(sampling_pattern(), n_bins=0)


class TestAngleBins:
    def test_zero_angle_bin_zero(self):
        assert angle_bins(np.array([0.0]))[0] == 0

    def test_full_turn_wraps(self):
        assert angle_bins(np.array([2 * np.pi]))[0] == 0

    def test_negative_angles_wrap(self):
        bins = angle_bins(np.array([-np.pi / 2]))
        assert bins[0] == (N_ANGLE_BINS * 3) // 4

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_always_valid_bin(self, angle):
        b = angle_bins(np.array([angle]))[0]
        assert 0 <= b < N_ANGLE_BINS


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, (5, 256)).astype(bool)
        assert np.array_equal(unpack_bits(pack_bits(bits)), bits)

    def test_packed_width(self):
        bits = np.zeros((3, 256), dtype=bool)
        assert pack_bits(bits).shape == (3, 32)

    def test_rejects_non_multiple_of_8(self):
        with pytest.raises(FeatureError):
            pack_bits(np.zeros((2, 10), dtype=bool))

    def test_rejects_non_2d_unpack(self):
        with pytest.raises(FeatureError):
            unpack_bits(np.zeros(32, dtype=np.uint8))

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, n_rows, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (n_rows, 64)).astype(bool)
        assert np.array_equal(unpack_bits(pack_bits(bits)), bits)
