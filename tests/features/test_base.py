"""Tests for the FeatureSet container."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.base import KEYPOINT_BYTES, FeatureSet


def _make(n=4, width=32, kind="orb"):
    return FeatureSet(
        kind=kind,
        descriptors=np.zeros((n, width), dtype=np.uint8),
        xs=np.zeros(n),
        ys=np.zeros(n),
        pixels_processed=1000,
    )


class TestFeatureSet:
    def test_len(self):
        assert len(_make(7)) == 7

    def test_descriptor_bytes(self):
        assert _make(4, 32).descriptor_bytes == 128

    def test_total_bytes_includes_keypoints(self):
        fs = _make(4, 32)
        assert fs.total_bytes == 128 + 4 * KEYPOINT_BYTES

    def test_rejects_mismatched_keypoints(self):
        with pytest.raises(FeatureError):
            FeatureSet(
                kind="orb",
                descriptors=np.zeros((3, 32), dtype=np.uint8),
                xs=np.zeros(2),
                ys=np.zeros(3),
                pixels_processed=0,
            )

    def test_rejects_non_2d_descriptors(self):
        with pytest.raises(FeatureError):
            FeatureSet(
                kind="orb",
                descriptors=np.zeros(32, dtype=np.uint8),
                xs=np.zeros(1),
                ys=np.zeros(1),
                pixels_processed=0,
            )

    def test_rejects_negative_pixels(self):
        with pytest.raises(FeatureError):
            FeatureSet(
                kind="orb",
                descriptors=np.zeros((1, 32), dtype=np.uint8),
                xs=np.zeros(1),
                ys=np.zeros(1),
                pixels_processed=-1,
            )
