"""Tests for PCA-SIFT."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.pca_sift import PCA_DIM, PcaSiftExtractor, _trained_basis
from repro.features.similarity import jaccard_similarity


@pytest.fixture(scope="module")
def pca_features(pca_sift, scene_image):
    return pca_sift.extract(scene_image)


class TestBasis:
    def test_shape(self):
        basis = _trained_basis(PCA_DIM)
        assert basis.shape == (128, PCA_DIM)

    def test_columns_orthonormal(self):
        basis = _trained_basis(PCA_DIM)
        gram = basis.T @ basis
        assert np.allclose(gram, np.eye(PCA_DIM), atol=1e-8)

    def test_cached(self):
        assert _trained_basis(PCA_DIM) is _trained_basis(PCA_DIM)


class TestExtraction:
    def test_descriptor_dim(self, pca_features):
        assert pca_features.descriptors.shape[1] == PCA_DIM

    def test_kind(self, pca_features):
        assert pca_features.kind == "pca-sift"

    def test_same_keypoints_as_sift(self, pca_sift, sift, scene_image):
        pca = pca_sift.extract(scene_image)
        base = sift.extract(scene_image)
        assert np.array_equal(pca.xs, base.xs)
        assert np.array_equal(pca.ys, base.ys)

    def test_descriptors_normalised(self, pca_features):
        norms = np.linalg.norm(pca_features.descriptors, axis=1)
        assert np.allclose(norms[norms > 0], 1.0, atol=1e-3)

    def test_smaller_payload_than_sift(self, pca_sift, sift, scene_image):
        pca = pca_sift.extract(scene_image)
        base = sift.extract(scene_image)
        assert pca.descriptor_bytes < base.descriptor_bytes
        assert pca.descriptor_bytes == pytest.approx(
            base.descriptor_bytes * PCA_DIM / 128, rel=0.01
        )


class TestInvariance:
    def test_same_scene_similarity(self, pca_sift, scene_image, scene_image_alt_view):
        a = pca_sift.extract(scene_image)
        b = pca_sift.extract(scene_image_alt_view)
        assert jaccard_similarity(a, b) > 0.05

    def test_cross_scene_dissimilarity(self, pca_sift, scene_image, other_scene_image):
        a = pca_sift.extract(scene_image)
        c = pca_sift.extract(other_scene_image)
        assert jaccard_similarity(a, c) < 0.05


class TestValidation:
    def test_rejects_bad_dim(self):
        with pytest.raises(FeatureError):
            PcaSiftExtractor(dim=0)
        with pytest.raises(FeatureError):
            PcaSiftExtractor(dim=200)
