"""Tests for the ORB extractor."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.orb import OrbExtractor
from repro.features.similarity import jaccard_similarity
from repro.imaging.bitmap import compress_image
from repro.imaging.image import Image


class TestExtraction:
    def test_descriptor_shape(self, orb_features):
        assert orb_features.descriptors.shape[1] == 32
        assert orb_features.descriptors.dtype == np.uint8

    def test_kind(self, orb_features):
        assert orb_features.kind == "orb"

    def test_keypoints_within_image(self, orb_features, scene_image):
        assert (orb_features.xs >= 0).all()
        assert (orb_features.xs < scene_image.width).all()
        assert (orb_features.ys >= 0).all()
        assert (orb_features.ys < scene_image.height).all()

    def test_finds_many_keypoints(self, orb_features):
        assert len(orb_features) > 30

    def test_pixels_processed_counts_pyramid(self, orb_features, scene_image):
        # Pyramid levels add more pixels than the base image alone.
        assert orb_features.pixels_processed > scene_image.pixels

    def test_deterministic(self, orb, scene_image):
        a = orb.extract(scene_image)
        b = orb.extract(scene_image)
        assert np.array_equal(a.descriptors, b.descriptors)

    def test_image_id_carried(self, orb_features, scene_image):
        assert orb_features.image_id == scene_image.image_id

    def test_max_features_enforced(self, scene_image):
        small = OrbExtractor(max_features=10)
        assert len(small.extract(scene_image)) <= 10

    def test_flat_image_no_features(self, orb):
        flat = Image(bitmap=np.full((80, 80, 3), 127, dtype=np.uint8))
        assert len(orb.extract(flat)) == 0

    def test_small_image_single_level(self, orb):
        rng = np.random.default_rng(0)
        tiny = Image(bitmap=rng.integers(0, 255, (40, 40, 3)).astype(np.uint8))
        features = orb.extract(tiny)  # pyramid levels below min size skipped
        assert features.pixels_processed == 40 * 40


class TestInvariance:
    def test_same_scene_views_match_strongly(self, orb_features, orb_features_alt_view):
        assert jaccard_similarity(orb_features, orb_features_alt_view) > 0.15

    def test_different_scenes_do_not_match(self, orb_features, orb_features_other):
        assert jaccard_similarity(orb_features, orb_features_other) < 0.013

    def test_survives_bitmap_compression(self, orb, scene_image, scene_image_alt_view):
        compressed = orb.extract(compress_image(scene_image, 0.4))
        other_view = orb.extract(compress_image(scene_image_alt_view, 0.4))
        assert jaccard_similarity(compressed, other_view) > 0.05

    def test_compression_reduces_keypoints(self, orb, scene_image, orb_features):
        compressed = orb.extract(compress_image(scene_image, 0.5))
        assert len(compressed) < len(orb_features)


class TestValidation:
    def test_rejects_bad_max_features(self):
        with pytest.raises(FeatureError):
            OrbExtractor(max_features=0)

    def test_rejects_bad_levels(self):
        with pytest.raises(FeatureError):
            OrbExtractor(n_levels=0)

    def test_rejects_bad_scale(self):
        with pytest.raises(FeatureError):
            OrbExtractor(scale_factor=1.0)
