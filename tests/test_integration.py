"""End-to-end integration tests across the whole stack."""

import pytest

import repro
from repro import (
    BeesConfig,
    BeesScheme,
    DirectUpload,
    Smartphone,
    UploadSession,
    build_server,
)
from repro.datasets import DisasterDataset


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_from_docstring(self):
        batch = DisasterDataset().make_batch(n_images=8, n_inbatch_similar=2)
        scheme = BeesScheme()
        report = scheme.process_batch(Smartphone(), build_server(scheme), batch)
        assert 0 < report.n_uploaded < len(batch)


class TestMultiBatchConsistency:
    def test_second_batch_sees_first_batch_uploads(self):
        """Images uploaded in batch 1 become cross-batch redundancy for
        batch 2 — the index genuinely accumulates."""
        data = DisasterDataset()
        batch1 = data.make_batch(n_images=6, n_inbatch_similar=0, seed=1, scene_offset=0)
        # Batch 2 reuses batch 1's scenes (different views, fresh ids).
        batch2 = [
            data._view(int(image.group_id.rsplit("s", 1)[1]), 2, f"again-{image.image_id}")
            for image in batch1
        ]
        scheme = BeesScheme()
        session = UploadSession(
            scheme=scheme, device=Smartphone(), server=build_server(scheme)
        )
        first = session.run_batch(batch1)
        second = session.run_batch(batch2)
        assert first.n_uploaded == 6
        assert second.n_uploaded <= 1  # everything now redundant
        assert len(second.eliminated_cross_batch) >= 5

    def test_server_state_consistent_after_batches(self):
        data = DisasterDataset()
        scheme = BeesScheme()
        server = build_server(scheme)
        session = UploadSession(scheme=scheme, device=Smartphone(), server=server)
        for seed in (1, 2):
            session.run_batch(
                data.make_batch(
                    n_images=5, n_inbatch_similar=0, seed=seed, scene_offset=seed * 50
                )
            )
        assert len(server.store) == session.total_uploaded
        assert len(server.index) == session.total_uploaded


class TestEnergyConservation:
    def test_meter_matches_battery_drain(self):
        """Every joule drained from the battery appears in the ledger."""
        data = DisasterDataset()
        batch = data.make_batch(n_images=6, n_inbatch_similar=1)
        device = Smartphone()
        scheme = BeesScheme()
        scheme.process_batch(device, build_server(scheme), batch)
        drained = device.battery.capacity_joules - device.battery.remaining_joules
        assert device.meter.total_joules == pytest.approx(drained)

    def test_direct_upload_energy_linear_in_batch_size(self):
        data = DisasterDataset()
        small = data.make_batch(n_images=4, n_inbatch_similar=0, seed=1)
        large = data.make_batch(n_images=8, n_inbatch_similar=0, seed=1)
        device_small = Smartphone()
        device_large = Smartphone()
        DirectUpload().process_batch(device_small, build_server(DirectUpload()), small)
        DirectUpload().process_batch(device_large, build_server(DirectUpload()), large)
        ratio = device_large.meter.total_joules / device_small.meter.total_joules
        assert ratio == pytest.approx(2.0, rel=0.25)


class TestAblationConfig:
    def test_everything_disabled_is_roughly_direct_upload(self):
        """BEES with all stages off uploads everything at full size,
        paying only the feature-extraction/query overhead on top."""
        config = BeesConfig(
            enable_afe=False, enable_cbrd=False, enable_ssmm=False, enable_aiu=False
        )
        data = DisasterDataset()
        batch = data.make_batch(n_images=5, n_inbatch_similar=1)
        stripped = BeesScheme(config=config)
        report = stripped.process_batch(Smartphone(), build_server(stripped), batch)
        assert report.n_uploaded == len(batch)
        total_nominal = sum(image.nominal_bytes for image in batch)
        assert report.sent_bytes >= total_nominal
