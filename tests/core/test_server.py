"""Tests for the BEES cloud server."""

import pytest

from repro.core.server import BeesServer
from repro.errors import SimulationError


class TestServer:
    def test_receive_indexes_and_stores(self, scene_image, orb_features):
        server = BeesServer()
        server.receive_image(scene_image, orb_features)
        assert len(server) == 1
        assert scene_image.image_id in server.store
        assert scene_image.image_id in server.index

    def test_receive_rejects_id_mismatch(self, scene_image, orb_features_other):
        server = BeesServer()
        with pytest.raises(SimulationError):
            server.receive_image(scene_image, orb_features_other)

    def test_received_bytes_recorded(self, scene_image, orb_features):
        server = BeesServer()
        server.receive_image(scene_image, orb_features, received_bytes=1234)
        assert server.store.get(scene_image.image_id).received_bytes == 1234

    def test_seed_image_zero_bytes(self, scene_image, orb_features):
        server = BeesServer()
        server.seed_image(scene_image, orb_features)
        assert server.store.get(scene_image.image_id).received_bytes == 0

    def test_query_counts(self, scene_image, orb_features):
        server = BeesServer()
        server.receive_image(scene_image, orb_features)
        assert server.queries_served == 0
        server.query_features(orb_features)
        assert server.queries_served == 1

    def test_query_finds_received_image(
        self, scene_image, orb_features, orb_features_alt_view
    ):
        server = BeesServer()
        server.receive_image(scene_image, orb_features)
        result = server.query_features(orb_features_alt_view)
        assert result.best_id == scene_image.image_id

    def test_query_top_passthrough(self, scene_image, orb_features):
        server = BeesServer()
        server.receive_image(scene_image, orb_features)
        top = server.query_top(orb_features, 2)
        assert top[0][0] == scene_image.image_id


class TestBatchQueries:
    def test_batch_matches_sequential(
        self, scene_image, orb_features, orb_features_alt_view, orb_features_other
    ):
        server = BeesServer()
        server.receive_image(scene_image, orb_features)
        queries = [orb_features_alt_view, orb_features_other]
        batched = server.query_features_batch(queries)
        assert batched == [server.index.query(q) for q in queries]
        assert server.queries_served == len(queries)

    def test_batch_on_sharded_index(
        self, scene_image, orb_features, orb_features_alt_view
    ):
        from repro.index import ShardedFeatureIndex

        server = BeesServer(index=ShardedFeatureIndex(n_shards=4))
        server.receive_image(scene_image, orb_features)
        reference = BeesServer()
        reference.receive_image(scene_image, orb_features)
        assert server.query_features_batch([orb_features_alt_view]) == (
            reference.query_features_batch([orb_features_alt_view])
        )

    def test_empty_batch(self):
        server = BeesServer()
        assert server.query_features_batch([]) == []
        assert server.queries_served == 0
