"""Tests for BeesConfig."""

import pytest

from repro.core.config import DEFAULT_QUALITY_PROPORTION, BeesConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_quality_fixed_at_085(self):
        assert DEFAULT_QUALITY_PROPORTION == 0.85
        assert BeesConfig().quality_proportion == 0.85

    def test_all_components_enabled(self):
        config = BeesConfig()
        assert config.enable_afe
        assert config.enable_cbrd
        assert config.enable_ssmm
        assert config.enable_aiu

    def test_adaptive_budget_by_default(self):
        assert BeesConfig().ssmm_budget == "components"


class TestValidation:
    def test_rejects_bad_quality(self):
        with pytest.raises(ConfigurationError):
            BeesConfig(quality_proportion=0.99)

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            BeesConfig(ssmm_budget=0)
        with pytest.raises(ConfigurationError):
            BeesConfig(ssmm_budget="whatever")

    def test_accepts_fixed_budget(self):
        assert BeesConfig(ssmm_budget=9).ssmm_budget == 9


class TestEaDisabled:
    def test_policies_pinned_at_full_battery_values(self):
        config = BeesConfig.ea_disabled()
        for ebat in (0.0, 0.5, 1.0):
            assert config.eac(ebat) == 0.0
            assert config.edr(ebat) == pytest.approx(0.019)
            assert config.eau(ebat) == 0.0

    def test_quality_compression_kept(self):
        assert BeesConfig.ea_disabled().quality_proportion == 0.85

    def test_ssmm_kept(self):
        assert BeesConfig.ea_disabled().enable_ssmm

    def test_overrides_pass_through(self):
        config = BeesConfig.ea_disabled(enable_ssmm=False)
        assert not config.enable_ssmm
