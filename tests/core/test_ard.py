"""Tests for cross-batch redundancy detection (CBRD / EDR)."""

import pytest

from repro.core.ard import CrossBatchDetector
from repro.core.server import BeesServer


@pytest.fixture()
def seeded_server(orb_features, orb_features_other):
    server = BeesServer()
    server.index.add(orb_features)
    server.index.add(orb_features_other)
    return server


class TestThreshold:
    def test_tracks_edr_policy(self):
        detector = CrossBatchDetector()
        assert detector.threshold_for(1.0) == pytest.approx(0.019)
        assert detector.threshold_for(0.0) == pytest.approx(0.013)


class TestDecide:
    def test_similar_image_redundant(self, seeded_server, orb_features_alt_view):
        decision = CrossBatchDetector().decide(
            orb_features_alt_view, seeded_server, ebat=1.0
        )
        assert decision.redundant
        assert decision.best_match_id == "scene7-v0"
        assert decision.max_similarity > decision.threshold

    def test_unique_image_not_redundant(self, seeded_server, orb, generator):
        unique = orb.extract(generator.view(777, 0, image_id="u"))
        decision = CrossBatchDetector().decide(unique, seeded_server, ebat=1.0)
        assert not decision.redundant

    def test_empty_server_never_redundant(self, orb_features):
        decision = CrossBatchDetector().decide(orb_features, BeesServer(), ebat=1.0)
        assert not decision.redundant
        assert decision.max_similarity == 0.0

    def test_disabled_detector_skips_query(self, seeded_server, orb_features_alt_view):
        detector = CrossBatchDetector(enabled=False)
        served_before = seeded_server.queries_served
        decision = detector.decide(orb_features_alt_view, seeded_server, ebat=1.0)
        assert not decision.redundant
        assert seeded_server.queries_served == served_before

    def test_decide_batch_matches_decide(
        self, seeded_server, orb_features_alt_view, orb, generator
    ):
        detector = CrossBatchDetector()
        unique = orb.extract(generator.view(777, 0, image_id="u"))
        batch = [orb_features_alt_view, unique]
        expected = [detector.decide(f, seeded_server, ebat=0.6) for f in batch]
        assert detector.decide_batch(batch, seeded_server, ebat=0.6) == expected

    def test_decide_batch_disabled_skips_query(
        self, seeded_server, orb_features_alt_view
    ):
        detector = CrossBatchDetector(enabled=False)
        served_before = seeded_server.queries_served
        decisions = detector.decide_batch(
            [orb_features_alt_view], seeded_server, ebat=1.0
        )
        assert not decisions[0].redundant
        assert seeded_server.queries_served == served_before

    def test_borderline_similarity_depends_on_ebat(
        self, seeded_server, orb_features, monkeypatch
    ):
        """An image whose max similarity falls between the low- and
        high-battery thresholds flips verdict with Ebat."""
        from repro.core.ard import CrossBatchDetector
        from repro.index.index import QueryResult

        detector = CrossBatchDetector()
        monkeypatch.setattr(
            seeded_server,
            "query_features",
            lambda features: QueryResult(
                best_id="x", best_similarity=0.016, candidates_checked=1
            ),
        )
        low = detector.decide(orb_features, seeded_server, ebat=0.0)  # T = 0.013
        high = detector.decide(orb_features, seeded_server, ebat=1.0)  # T = 0.019
        assert low.redundant
        assert not high.redundant
