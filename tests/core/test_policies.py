"""Tests for the EAAS linear policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import (
    LinearPolicy,
    eac_policy,
    eau_policy,
    edr_policy,
    ssmm_cut_policy,
)
from repro.errors import ConfigurationError

EBAT = st.floats(min_value=0.0, max_value=1.0)


class TestLinearPolicy:
    def test_evaluates_line(self):
        policy = LinearPolicy(intercept=1.0, slope=-0.5, lo=0.0, hi=2.0)
        assert policy(0.5) == pytest.approx(0.75)

    def test_clamps_to_bounds(self):
        policy = LinearPolicy(intercept=0.0, slope=2.0, lo=0.0, hi=1.0)
        assert policy(1.0) == 1.0

    def test_rejects_out_of_range_ebat(self):
        with pytest.raises(ConfigurationError):
            eac_policy()(1.5)
        with pytest.raises(ConfigurationError):
            eac_policy()(-0.1)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            LinearPolicy(intercept=0, slope=0, lo=1.0, hi=0.0)

    def test_fixed_policy_constant(self):
        policy = LinearPolicy.fixed(0.4)
        assert policy(0.0) == policy(1.0) == 0.4


class TestPaperConstants:
    def test_eac_formula(self):
        # C = 0.4 - 0.4 * Ebat.
        policy = eac_policy()
        assert policy(1.0) == pytest.approx(0.0)
        assert policy(0.0) == pytest.approx(0.4)
        assert policy(0.05) == pytest.approx(0.38)  # the paper's example

    def test_edr_formula(self):
        # T = 0.013 + 0.006 * Ebat.
        policy = edr_policy()
        assert policy(0.0) == pytest.approx(0.013)
        assert policy(1.0) == pytest.approx(0.019)

    def test_ssmm_cut_matches_edr(self):
        assert ssmm_cut_policy()(0.5) == edr_policy()(0.5)

    def test_eau_formula(self):
        # Cr = 0.8 - 0.8 * Ebat.
        policy = eau_policy()
        assert policy(1.0) == pytest.approx(0.0)
        assert policy(0.0) == pytest.approx(0.8)
        assert policy(0.05) == pytest.approx(0.76)  # the paper's example

    @given(EBAT)
    def test_eac_bounded(self, ebat):
        assert 0.0 <= eac_policy()(ebat) <= 0.4

    @given(EBAT)
    def test_edr_bounded(self, ebat):
        assert 0.013 <= edr_policy()(ebat) <= 0.019

    @given(EBAT)
    def test_eau_bounded(self, ebat):
        assert 0.0 <= eau_policy()(ebat) <= 0.8

    @given(EBAT, EBAT)
    def test_lower_battery_means_more_compression(self, a, b):
        low, high = sorted((a, b))
        assert eac_policy()(low) >= eac_policy()(high)
        assert eau_policy()(low) >= eau_policy()(high)

    @given(EBAT, EBAT)
    def test_lower_battery_means_lower_threshold(self, a, b):
        low, high = sorted((a, b))
        assert edr_policy()(low) <= edr_policy()(high)
