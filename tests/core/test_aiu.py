"""Tests for Approximate Image Uploading (AIU / EAU)."""

import pytest

from repro.core.aiu import ApproximateImageUploading, fitted_quality_size_factor
from repro.imaging.ssim import ssim


@pytest.fixture(scope="module")
def aiu():
    return ApproximateImageUploading()


class TestPolicies:
    def test_full_battery_no_resolution_compression(self, aiu):
        assert aiu.resolution_proportion_for(1.0) == 0.0

    def test_empty_battery_max_resolution_compression(self, aiu):
        assert aiu.resolution_proportion_for(0.0) == pytest.approx(0.8)

    def test_disabled_no_compression(self, scene_image):
        aiu = ApproximateImageUploading(enabled=False)
        result = aiu.prepare(scene_image, ebat=0.0)
        assert result.image is scene_image
        assert result.cost.joules == 0.0


class TestPrepare:
    def test_quality_compression_always_applied(self, aiu, scene_image):
        result = aiu.prepare(scene_image, ebat=1.0)
        assert result.quality_proportion == 0.85
        assert result.upload_bytes < scene_image.nominal_bytes

    def test_resolution_shrinks_at_low_battery(self, aiu, scene_image):
        full = aiu.prepare(scene_image, ebat=1.0)
        low = aiu.prepare(scene_image, ebat=0.1)
        assert low.image.width < full.image.width
        assert low.upload_bytes < full.upload_bytes

    def test_resolution_preserved_at_full_battery(self, aiu, scene_image):
        result = aiu.prepare(scene_image, ebat=1.0)
        assert result.image.resolution == scene_image.resolution

    def test_decoded_image_resembles_original(self, aiu, scene_image):
        result = aiu.prepare(scene_image, ebat=1.0)
        assert ssim(scene_image, result.image) > 0.75

    def test_compression_cost_positive(self, aiu, scene_image):
        assert aiu.prepare(scene_image, ebat=0.5).cost.joules > 0

    def test_metadata_preserved(self, aiu, scene_image):
        result = aiu.prepare(scene_image, ebat=0.3)
        assert result.image.image_id == scene_image.image_id

    def test_monotone_bytes_in_ebat(self, aiu, scene_image):
        sizes = [aiu.prepare(scene_image, ebat=e).upload_bytes for e in (0.0, 0.5, 1.0)]
        assert sizes == sorted(sizes)


class TestFastCodec:
    def test_fitted_curve_monotone(self):
        factors = [fitted_quality_size_factor(p) for p in (0.0, 0.3, 0.6, 0.85, 0.95)]
        assert factors == sorted(factors, reverse=True)

    def test_fitted_bounds(self):
        assert fitted_quality_size_factor(0.0) == pytest.approx(1.0)
        assert 0.0 < fitted_quality_size_factor(0.95) < 1.0

    def test_fast_mode_close_to_exact(self, scene_image):
        exact = ApproximateImageUploading(exact_codec=True).prepare(scene_image, 1.0)
        fast = ApproximateImageUploading(exact_codec=False).prepare(scene_image, 1.0)
        assert fast.upload_bytes == pytest.approx(exact.upload_bytes, rel=0.25)

    def test_fast_mode_keeps_bitmap(self, scene_image):
        import numpy as np

        fast = ApproximateImageUploading(exact_codec=False).prepare(scene_image, 1.0)
        assert np.array_equal(fast.image.bitmap, scene_image.bitmap)
