"""Tests for SSMM: partitioning, submodularity, and the greedy algorithm."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ssmm import (
    SubmodularSelector,
    partition_components,
    select_unique_subset,
    similarity_matrix,
)
from repro.errors import ConfigurationError


def _weights(n, seed=0):
    """A random symmetric similarity matrix with unit diagonal."""
    rng = np.random.default_rng(seed)
    raw = rng.uniform(0, 1, (n, n))
    sym = (raw + raw.T) / 2
    np.fill_diagonal(sym, 1.0)
    return sym


weights_strategy = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.integers(min_value=0, max_value=10**6).map(lambda s: _weights(n, s))
)

# Brute-forceable SSMM instances: a similarity matrix with n <= 10 (so
# the optimum fits in itertools.combinations) plus a cut threshold.
instances_strategy = st.integers(min_value=2, max_value=10).flatmap(
    lambda n: st.tuples(
        st.integers(min_value=0, max_value=10**6).map(lambda s: _weights(n, s)),
        st.floats(min_value=0.0, max_value=1.0),
    )
)


def _count_components_bfs(weights, cut_threshold):
    """Independent reference component count: BFS over kept edges.

    Deliberately shares no code with ``partition_components`` (which
    uses union-find) so the budget property is a real cross-check.
    """
    n = weights.shape[0]
    adjacency = weights >= cut_threshold
    seen = [False] * n
    components = 0
    for start in range(n):
        if seen[start]:
            continue
        components += 1
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            for v in range(n):
                if v != u and adjacency[u, v] and not seen[v]:
                    seen[v] = True
                    stack.append(v)
    return components


class TestPartition:
    def test_all_edges_cut_gives_singletons(self):
        weights = _weights(5)
        labels = partition_components(weights, cut_threshold=2.0)
        assert len(set(labels.tolist())) == 5

    def test_no_edges_cut_gives_one_component(self):
        weights = _weights(5)
        labels = partition_components(weights, cut_threshold=0.0)
        assert len(set(labels.tolist())) == 1

    def test_two_clusters(self):
        weights = np.eye(4)
        weights[0, 1] = weights[1, 0] = 0.9
        weights[2, 3] = weights[3, 2] = 0.9
        labels = partition_components(weights, cut_threshold=0.5)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_transitive_chaining(self):
        # a-b and b-c similar, a-c not: still one component.
        weights = np.eye(3)
        weights[0, 1] = weights[1, 0] = 0.9
        weights[1, 2] = weights[2, 1] = 0.9
        labels = partition_components(weights, cut_threshold=0.5)
        assert labels[0] == labels[1] == labels[2]

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            partition_components(np.zeros((2, 3)), 0.5)

    @given(weights_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40)
    def test_labels_are_contiguous_from_zero(self, weights, threshold):
        labels = partition_components(weights, threshold)
        uniques = sorted(set(labels.tolist()))
        assert uniques == list(range(len(uniques)))

    @given(weights_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_labels_identical_to_per_vertex_find_loop(self, weights, threshold):
        """The vectorized pointer-jumping root resolution must emit the
        exact labels of the old per-vertex Python ``find`` loop."""
        from tests.kernels.reference import reference_partition_components

        expected = reference_partition_components(weights, threshold)
        assert np.array_equal(partition_components(weights, threshold), expected)


class TestObjective:
    def test_coverage_of_full_set_is_n(self):
        weights = _weights(6)
        selector = SubmodularSelector()
        # Every image's best representative is itself (diagonal 1).
        assert selector.coverage(weights, list(range(6))) == pytest.approx(6.0)

    def test_coverage_empty_is_zero(self):
        assert SubmodularSelector().coverage(_weights(4), []) == 0.0

    def test_diversity_counts_components(self):
        labels = np.array([0, 0, 1, 2])
        selector = SubmodularSelector()
        assert selector.diversity(labels, [0, 1]) == 1.0
        assert selector.diversity(labels, [0, 2, 3]) == 3.0

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            SubmodularSelector(coverage_weight=-1.0)

    @given(weights_strategy)
    @settings(max_examples=30)
    def test_objective_monotone(self, weights):
        """F(A) <= F(A + {v}) — monotonicity of the objective."""
        n = weights.shape[0]
        labels = partition_components(weights, 0.5)
        selector = SubmodularSelector()
        rng = np.random.default_rng(0)
        subset = [int(i) for i in rng.choice(n, size=n // 2, replace=False)]
        remaining = [v for v in range(n) if v not in subset]
        for v in remaining:
            assert selector.objective(weights, labels, subset + [v]) >= (
                selector.objective(weights, labels, subset) - 1e-12
            )

    @given(weights_strategy)
    @settings(max_examples=30)
    def test_objective_submodular(self, weights):
        """Definition 1: f(A+v) - f(A) >= f(B+v) - f(B) for A ⊆ B."""
        n = weights.shape[0]
        labels = partition_components(weights, 0.5)
        selector = SubmodularSelector()
        small = [0]
        big = list(range(max(1, n - 1)))  # small ⊆ big
        v = n - 1
        gain_small = selector.objective(weights, labels, small + [v]) - selector.objective(
            weights, labels, small
        )
        gain_big = selector.objective(weights, labels, big + [v]) - selector.objective(
            weights, labels, big
        )
        assert gain_small >= gain_big - 1e-9


class TestGreedy:
    def test_respects_budget(self):
        weights = _weights(8)
        labels = partition_components(weights, 0.5)
        selected = SubmodularSelector().greedy(weights, labels, budget=3)
        assert len(selected) <= 3

    def test_budget_capped_at_n(self):
        weights = _weights(3)
        labels = partition_components(weights, 0.5)
        selected = SubmodularSelector().greedy(weights, labels, budget=10)
        assert len(selected) <= 3

    def test_no_duplicate_selections(self):
        weights = _weights(8)
        labels = partition_components(weights, 0.5)
        selected = SubmodularSelector().greedy(weights, labels, budget=8)
        assert len(selected) == len(set(selected))

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            SubmodularSelector().greedy(_weights(3), np.zeros(3, dtype=int), budget=0)

    def test_picks_cluster_representatives(self):
        # Two tight clusters: the greedy must take one from each.
        weights = np.eye(4) * 1.0
        for i, j in ((0, 1), (2, 3)):
            weights[i, j] = weights[j, i] = 0.95
        labels = partition_components(weights, 0.5)
        selected = SubmodularSelector().greedy(weights, labels, budget=2)
        assert len({labels[v] for v in selected}) == 2

    @given(weights_strategy)
    @settings(max_examples=20)
    def test_greedy_within_constant_factor_of_optimum(self, weights):
        """The (1 - 1/e) guarantee, checked exhaustively on small inputs."""
        n = weights.shape[0]
        labels = partition_components(weights, 0.5)
        selector = SubmodularSelector()
        budget = max(1, n // 2)
        selected = selector.greedy(weights, labels, budget)
        greedy_value = selector.objective(weights, labels, selected)
        best = max(
            selector.objective(weights, labels, list(combo))
            for combo in itertools.combinations(range(n), min(budget, n))
        )
        assert greedy_value >= (1 - 1 / np.e) * best - 1e-9


class TestSelectUniqueSubset:
    def test_empty_batch(self):
        result = select_unique_subset([], cut_threshold=0.019)
        assert result.selected == []
        assert result.budget == 0

    def test_adaptive_budget_equals_components(self, small_batch_features):
        _, features = small_batch_features
        result = select_unique_subset(features, cut_threshold=0.019)
        assert result.budget == result.n_components
        assert len(result.selected) == result.budget

    def test_in_batch_duplicates_collapsed(self, small_batch_features):
        # 8 images over 5 scenes -> 5 components -> 5 representatives.
        _, features = small_batch_features
        result = select_unique_subset(features, cut_threshold=0.019)
        assert result.budget == 5
        groups = {features[i].image_id.split("v")[0] for i in result.selected}
        assert len(groups) == 5

    def test_fixed_budget(self, small_batch_features):
        _, features = small_batch_features
        result = select_unique_subset(features, cut_threshold=0.019, budget=2)
        assert len(result.selected) == 2

    def test_higher_cut_threshold_more_components(self, small_batch_features):
        _, features = small_batch_features
        low = select_unique_subset(features, cut_threshold=0.013)
        high = select_unique_subset(features, cut_threshold=0.5)
        assert high.n_components >= low.n_components

    def test_precomputed_weights(self, small_batch_features):
        _, features = small_batch_features
        weights = similarity_matrix(features)
        direct = select_unique_subset(features, 0.019)
        cached = select_unique_subset(features, 0.019, weights=weights)
        assert direct.selected == cached.selected

    def test_rejects_mismatched_weights(self, small_batch_features):
        _, features = small_batch_features
        with pytest.raises(ConfigurationError):
            select_unique_subset(features, 0.019, weights=np.eye(2))


class TestSsmmProperties:
    """Hypothesis properties over the full SSMM pipeline.

    The batch is supplied as a precomputed similarity matrix (the
    ``weights`` fast path), so each example exercises partitioning,
    budgeting and the greedy directly without re-running feature
    matching.  ``feature_sets`` is placeholders: with *weights* given,
    ``select_unique_subset`` only reads its length.
    """

    @given(instances_strategy)
    @settings(max_examples=40, deadline=None)
    def test_adaptive_budget_is_component_count(self, instance):
        """The paper's rule: budget == #components at Tw, cross-checked
        against an independent BFS over the kept-edge graph."""
        weights, threshold = instance
        n = weights.shape[0]
        result = select_unique_subset([None] * n, threshold, weights=weights)
        assert result.budget == _count_components_bfs(weights, threshold)
        assert result.budget == result.n_components

    @given(weights_strategy, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_selection_size_monotone_in_cut_threshold(self, weights, t_a, t_b):
        """Raising Tw never shrinks the summary.

        A higher threshold removes edges, which can only split
        components, never merge them — so the component count, the
        adaptive budget, and with it the selection size are all
        non-DEcreasing in Tw.  (The natural misreading is
        "non-increasing": more aggressive cutting *sounds* like fewer
        uploads, but cut edges mean images stop vouching for each
        other, so more representatives are needed.)
        """
        low, high = sorted((t_a, t_b))
        n = weights.shape[0]
        at_low = select_unique_subset([None] * n, low, weights=weights)
        at_high = select_unique_subset([None] * n, high, weights=weights)
        assert at_high.n_components >= at_low.n_components
        assert at_high.budget >= at_low.budget
        assert len(at_high.selected) >= len(at_low.selected)

    @given(instances_strategy)
    @settings(max_examples=25, deadline=None)
    def test_pipeline_greedy_within_constant_factor(self, instance):
        """Greedy >= (1 - 1/e) * OPT on exhaustively solvable instances.

        Unlike ``TestGreedy``'s fixed-threshold check, this drives the
        whole pipeline (threshold -> components -> adaptive budget ->
        greedy) and brute-forces OPT at n <= 10.  F is monotone, so the
        optimum over |S| <= b is attained at |S| == min(b, n).
        """
        weights, threshold = instance
        n = weights.shape[0]
        result = select_unique_subset([None] * n, threshold, weights=weights)
        selector = SubmodularSelector()
        size = min(result.budget, n)
        best = max(
            selector.objective(weights, result.component_labels, list(combo))
            for combo in itertools.combinations(range(n), size)
        )
        assert result.objective >= (1 - 1 / np.e) * best - 1e-9


class TestSimilarityMatrix:
    def test_diagonal_is_one(self, small_batch_features):
        _, features = small_batch_features
        weights = similarity_matrix(features[:3])
        assert np.allclose(np.diag(weights), 1.0)

    def test_symmetric(self, small_batch_features):
        _, features = small_batch_features
        weights = similarity_matrix(features[:4])
        assert np.allclose(weights, weights.T)

    def test_same_scene_edges_heavy(self, small_batch_features):
        _, features = small_batch_features
        weights = similarity_matrix(features)
        # Index pairs (0,1), (2,3), (4,5) are same-scene views.
        for i, j in ((0, 1), (2, 3), (4, 5)):
            assert weights[i, j] > 0.1
        # Cross-scene pairs are far below the EDR band.
        assert weights[0, 2] < 0.013
        assert weights[6, 7] < 0.013
