"""Tests for the end-to-end BEES client pipeline."""

import pytest

from repro.core.client import BeesScheme
from repro.core.config import BeesConfig
from repro.core.server import BeesServer
from repro.energy import (
    COMPRESSION,
    FEATURE_EXTRACTION,
    FEATURE_UPLOAD,
    IMAGE_UPLOAD,
    Battery,
)
from repro.sim.device import Smartphone
from repro.sim.session import build_server


@pytest.fixture()
def device():
    return Smartphone()


@pytest.fixture(scope="module")
def batch(small_batch_features):
    images, _ = small_batch_features
    return images


class TestPipeline:
    def test_in_batch_duplicates_eliminated(self, device, batch):
        scheme = BeesScheme()
        report = scheme.process_batch(device, BeesServer(), batch)
        # 8 images over 5 scenes: 3 in-batch duplicates dropped.
        assert report.n_uploaded == 5
        assert len(report.eliminated_in_batch) == 3
        assert not report.eliminated_cross_batch

    def test_cross_batch_duplicates_eliminated(self, device, batch, generator):
        scheme = BeesScheme()
        # Seed the server with another view of scene 20.
        partner = generator.view(20, 3, image_id="seed-20", group_id="s20")
        server = build_server(scheme, [partner])
        report = scheme.process_batch(device, server, batch)
        assert any(image_id.startswith("s20") for image_id in report.eliminated_cross_batch)

    def test_uploaded_images_indexed_on_server(self, device, batch):
        scheme = BeesScheme()
        server = BeesServer()
        report = scheme.process_batch(device, server, batch)
        for image_id in report.uploaded_ids:
            assert image_id in server.store
            assert image_id in server.index

    def test_energy_ledger_covers_all_stages(self, device, batch):
        report = BeesScheme().process_batch(device, BeesServer(), batch)
        for category in (FEATURE_EXTRACTION, FEATURE_UPLOAD, COMPRESSION, IMAGE_UPLOAD):
            assert report.energy_by_category.get(category, 0.0) > 0.0

    def test_bytes_sent_counts_everything(self, device, batch):
        report = BeesScheme().process_batch(device, BeesServer(), batch)
        assert report.sent_bytes == device.uplink.sent_bytes
        assert report.sent_bytes > 0

    def test_delay_recorded_per_image(self, device, batch):
        report = BeesScheme().process_batch(device, BeesServer(), batch)
        assert len(report.per_image_seconds) == len(batch)
        assert report.total_seconds == pytest.approx(sum(report.per_image_seconds))
        assert report.average_image_seconds > 0
        # Nothing was cross-batch eliminated, so there is no
        # elimination-phase overhead to attribute.
        assert report.elimination_seconds == 0.0

    def test_eliminated_images_do_not_inflate_total_seconds(
        self, device, batch, generator
    ):
        """Regression: CBRD-eliminated images used to leave their AFE +
        feature-upload seconds in ``per_image_seconds`` (and therefore
        ``total_seconds``); that time is elimination overhead and now
        lands in ``elimination_seconds`` instead."""
        scheme = BeesScheme()
        partner = generator.view(20, 4, image_id="seed-20-delay", group_id="s20")
        server = build_server(scheme, [partner])
        report = scheme.process_batch(device, server, batch)
        assert report.eliminated_cross_batch  # the seed must bite
        assert len(report.per_image_seconds) == len(batch) - len(
            report.eliminated_cross_batch
        )
        assert report.total_seconds == pytest.approx(sum(report.per_image_seconds))
        assert report.elimination_seconds > 0.0
        # The paper's Figure-11 average still counts the detection-only
        # cost of eliminated images.
        assert report.average_image_seconds == pytest.approx(
            (report.total_seconds + report.elimination_seconds) / len(batch)
        )

    def test_empty_battery_halts(self, batch):
        device = Smartphone()
        device.battery = Battery(capacity_joules=1.0)
        report = BeesScheme().process_batch(device, BeesServer(), batch)
        assert report.halted
        assert report.n_uploaded < len(batch)

    def test_report_energy_matches_meter(self, batch):
        device = Smartphone()
        report = BeesScheme().process_batch(device, BeesServer(), batch)
        assert report.total_energy_joules == pytest.approx(device.meter.total_joules)


class TestAblations:
    def test_ssmm_disabled_uploads_duplicates(self, device, batch):
        scheme = BeesScheme(config=BeesConfig(enable_ssmm=False))
        report = scheme.process_batch(device, BeesServer(), batch)
        assert report.n_uploaded == len(batch)
        assert not report.eliminated_in_batch

    def test_aiu_disabled_uploads_full_size(self, device, batch):
        scheme = BeesScheme(config=BeesConfig(enable_aiu=False))
        report = scheme.process_batch(device, BeesServer(), batch)
        with_aiu = BeesScheme().process_batch(Smartphone(), BeesServer(), batch)
        assert report.sent_bytes > with_aiu.sent_bytes

    def test_cbrd_disabled_never_queries(self, device, batch, generator):
        scheme = BeesScheme(config=BeesConfig(enable_cbrd=False))
        partner = generator.view(20, 3, image_id="seed-20b", group_id="s20")
        server = build_server(scheme, [partner])
        report = scheme.process_batch(device, server, batch)
        assert not report.eliminated_cross_batch

    def test_fixed_budget_config(self, device, batch):
        scheme = BeesScheme(config=BeesConfig(ssmm_budget=2))
        report = scheme.process_batch(device, BeesServer(), batch)
        assert report.n_uploaded == 2


class TestEnergyAdaptation:
    def test_low_battery_spends_less(self, batch):
        full_device = Smartphone()
        report_full = BeesScheme().process_batch(full_device, BeesServer(), batch)
        low_device = Smartphone()
        low_device.battery.recharge(0.1)
        report_low = BeesScheme().process_batch(low_device, BeesServer(), batch)
        assert report_low.total_energy_joules < report_full.total_energy_joules

    def test_low_battery_sends_fewer_bytes(self, batch):
        full_device = Smartphone()
        report_full = BeesScheme().process_batch(full_device, BeesServer(), batch)
        low_device = Smartphone()
        low_device.battery.recharge(0.1)
        report_low = BeesScheme().process_batch(low_device, BeesServer(), batch)
        assert report_low.sent_bytes < report_full.sent_bytes
