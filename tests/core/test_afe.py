"""Tests for Approximate Feature Extraction (AFE / EAC)."""

import pytest

from repro.core.afe import ApproximateFeatureExtraction
from repro.core.policies import LinearPolicy


@pytest.fixture(scope="module")
def afe():
    return ApproximateFeatureExtraction()


class TestProportion:
    def test_full_battery_no_compression(self, afe):
        assert afe.proportion_for(1.0) == 0.0

    def test_empty_battery_max_compression(self, afe):
        assert afe.proportion_for(0.0) == pytest.approx(0.4)

    def test_disabled_always_zero(self):
        afe = ApproximateFeatureExtraction(enabled=False)
        assert afe.proportion_for(0.0) == 0.0


class TestExtraction:
    def test_full_battery_matches_plain_extraction(self, afe, scene_image, orb_features):
        result = afe.extract(scene_image, ebat=1.0)
        assert len(result.features) == len(orb_features)
        assert result.compression_proportion == 0.0

    def test_low_battery_fewer_keypoints(self, afe, scene_image):
        full = afe.extract(scene_image, ebat=1.0)
        low = afe.extract(scene_image, ebat=0.0)
        assert len(low.features) < len(full.features)

    def test_low_battery_cheaper(self, afe, scene_image):
        full = afe.extract(scene_image, ebat=1.0)
        low = afe.extract(scene_image, ebat=0.0)
        assert low.cost.joules < full.cost.joules
        # (1 - 0.4)^2 = 0.36 of the full cost.
        assert low.cost.joules == pytest.approx(full.cost.joules * 0.36)

    def test_cost_charged_at_nominal_resolution(self, afe, scene_image):
        result = afe.extract(scene_image, ebat=1.0)
        expected = afe.cost_model.extraction_cost("orb", scene_image.nominal_pixels)
        assert result.cost.joules == pytest.approx(expected.joules)

    def test_features_still_match_across_views(
        self, afe, scene_image, scene_image_alt_view
    ):
        from repro.features.similarity import jaccard_similarity

        a = afe.extract(scene_image, ebat=0.3).features
        b = afe.extract(scene_image_alt_view, ebat=0.3).features
        assert jaccard_similarity(a, b) > 0.05

    def test_custom_policy(self, scene_image):
        afe = ApproximateFeatureExtraction(policy=LinearPolicy.fixed(0.2))
        assert afe.extract(scene_image, ebat=1.0).compression_proportion == 0.2
