"""Journal replay and cross-run diff over real fleet runs.

The replay contract: folding a run's journal events back together must
reproduce the live run's bytes, joules, and elimination lists **byte
identically** — the same fingerprint the run recorded in its
``fleet.run.end`` event.  The diff contract: a single tampered decision
must be localized to the exact device, stage, and payload field, both
by :func:`repro.obs.first_divergence` and in the
:func:`repro.fleet.assert_equivalent` failure message.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.fleet import (
    FleetRunner,
    assert_equivalent,
    format_replay,
    replay_journal,
)
from repro.obs import disable_journal, first_divergence, journal_to, read_journal


@pytest.fixture(autouse=True)
def reset_journal():
    yield
    disable_journal()


def journaled_run(path, *, seed=5, devices=3, mode="sequential", shards=1,
                  rounds=2, batch_size=3, capacity=1.0):
    runner = FleetRunner(
        n_devices=devices,
        n_rounds=rounds,
        batch_size=batch_size,
        n_shards=shards,
        seed=seed,
        mode=mode,
        capacity_fraction=capacity,
    )
    with journal_to(path):
        result = runner.run()
    assert result.journal_path == str(path)
    return result


def tamper_batch_event(path, out, device, mutate, select=lambda data: True):
    """Rewrite one matching ``fleet.batch`` record of *device*."""
    lines = path.read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines):
        raw = json.loads(line)
        if (
            raw.get("event") == "fleet.batch"
            and raw.get("device") == device
            and select(raw["data"])
        ):
            mutate(raw["data"])
            lines[number] = json.dumps(raw)
            break
    else:  # pragma: no cover - fixture guard
        raise AssertionError(f"no matching fleet.batch event for {device}")
    out.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestReplayEquivalence:
    @pytest.mark.parametrize("seed", (0, 7))
    @pytest.mark.parametrize("mode,shards", [("sequential", 1), ("concurrent", 4)])
    def test_replay_reproduces_the_fingerprint(self, tmp_path, seed, mode, shards):
        path = tmp_path / f"run-{seed}-{mode}.jsonl"
        result = journaled_run(path, seed=seed, mode=mode, shards=shards)
        report = replay_journal(path)
        assert report.issues == ()
        assert report.fingerprint == result.fingerprint()
        assert report.recorded_fingerprint == result.fingerprint()
        assert report.ok
        # Field-level byte identity, not just the hash.
        for live, replayed in zip(result.devices, report.result.devices):
            assert replayed.uploaded_ids == live.uploaded_ids
            assert replayed.energy_joules == live.energy_joules
            assert replayed.sent_bytes == live.sent_bytes
        assert "replay OK" in format_replay(report)

    def test_sixteen_device_concurrent_replay_is_exact(self, tmp_path):
        # The acceptance bar: a concurrent 16-device fleet replays to
        # the exact live fingerprint from journal events alone.
        path = tmp_path / "fleet16.jsonl"
        result = journaled_run(
            path, seed=3, devices=16, mode="concurrent", shards=4,
            rounds=2, batch_size=2,
        )
        report = replay_journal(path)
        assert report.ok
        assert report.fingerprint == result.fingerprint()

    def test_low_battery_run_replays_halted_devices(self, tmp_path):
        path = tmp_path / "drained.jsonl"
        result = journaled_run(path, seed=2, devices=2, capacity=0.001)
        assert any(device.halted for device in result.devices)
        report = replay_journal(path)
        assert report.ok
        assert any(device.halted for device in report.result.devices)


class TestReplayIntegrity:
    def test_tampered_upload_fails_the_fingerprint(self, tmp_path):
        path = tmp_path / "live.jsonl"
        tampered = tmp_path / "tampered.jsonl"
        journaled_run(path)

        def drop_last_upload(data):
            assert data["uploaded"], "fixture needs a non-empty batch"
            data["uploaded"] = data["uploaded"][:-1]

        tamper_batch_event(path, tampered, "dev-01", drop_last_upload)
        report = replay_journal(tampered)
        assert not report.ok
        assert any("does not match" in issue for issue in report.issues)
        assert "replay FAILED" in format_replay(report)

    def test_event_vs_summary_cross_check(self, tmp_path):
        # A journal whose fine-grained cbrd.verdict events disagree
        # with the batch summary is flagged even before the hash.
        path = tmp_path / "live.jsonl"
        tampered = tmp_path / "cross.jsonl"
        result = journaled_run(path, seed=5, devices=4)
        victim = next(
            device.device
            for device in result.devices
            if device.eliminated_cross_batch
        )

        def clear_cross(data):
            data["eliminated_cross"] = []

        tamper_batch_event(
            path, tampered, victim, clear_cross,
            select=lambda data: bool(data["eliminated_cross"]),
        )
        report = replay_journal(tampered)
        assert any("cbrd.verdict" in issue for issue in report.issues)

    def test_replay_requires_exactly_one_run(self, tmp_path):
        path = tmp_path / "double.jsonl"
        runner = FleetRunner(n_devices=1, n_rounds=1, batch_size=2, seed=0)
        again = FleetRunner(n_devices=1, n_rounds=1, batch_size=2, seed=0)
        with journal_to(path):
            runner.run()
            again.run()
        with pytest.raises(SimulationError, match="2 fleet runs"):
            replay_journal(path)

    def test_truncated_journal_reports_an_incomplete_run(self, tmp_path):
        path = tmp_path / "live.jsonl"
        cut = tmp_path / "cut.jsonl"
        journaled_run(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        end = next(
            number for number, line in enumerate(lines)
            if '"fleet.run.end"' in line
        )
        cut.write_text("\n".join(lines[:end]) + "\n", encoding="utf-8")
        report = replay_journal(cut)
        assert not report.ok
        assert any("no fleet.run.end" in issue for issue in report.issues)


class TestDiffLocalization:
    def test_injected_divergence_names_the_decision(self, tmp_path):
        path = tmp_path / "live.jsonl"
        tampered = tmp_path / "tampered.jsonl"
        journaled_run(path)

        def drop_last_upload(data):
            data["uploaded"] = data["uploaded"][:-1]

        tamper_batch_event(path, tampered, "dev-01", drop_last_upload)
        divergence = first_divergence(
            read_journal(path), read_journal(tampered)
        )
        assert divergence is not None
        assert divergence.device == "dev-01"
        text = divergence.describe()
        assert "dev-01" in text
        assert "fleet.batch" in text
        assert "uploaded" in text

    def test_sequential_and_concurrent_journals_are_decision_identical(
        self, tmp_path
    ):
        left = tmp_path / "seq.jsonl"
        right = tmp_path / "conc.jsonl"
        a = journaled_run(left, mode="sequential", shards=1)
        b = journaled_run(right, mode="concurrent", shards=4)
        assert a.fingerprint() == b.fingerprint()
        assert first_divergence(read_journal(left), read_journal(right)) is None

    def test_assert_equivalent_names_the_divergent_event(self, tmp_path):
        path = tmp_path / "live.jsonl"
        tampered = tmp_path / "tampered.jsonl"
        result = journaled_run(path)

        def drop_last_upload(data):
            data["uploaded"] = data["uploaded"][:-1]

        tamper_batch_event(path, tampered, "dev-01", drop_last_upload)
        # Replay rebuilds a FleetResult that carries the tampered
        # journal's path, so the failure can read both journals.
        candidate = replay_journal(tampered).result
        with pytest.raises(SimulationError) as excinfo:
            assert_equivalent(result, candidate)
        message = str(excinfo.value)
        assert "first divergent journal event" in message
        assert "dev-01" in message
        assert "fleet.batch" in message
        assert "uploaded" in message
