"""Race stress for the sharded index, plus the lint gate on new code.

The sharded index's thread-safety claims are narrow and testable: under
heavy concurrent writing there are **no lost updates** (every add that
returned is present) and **no duplicate entries** (a duplicate id wins
exactly once, fleet-wide), and concurrent readers never crash or see a
torn answer.  A 32-thread barrier start maximises interleavings on
every shard count.

The synthetic feature sets are built directly from a seeded RNG —
running ORB 300 times here would test the extractor, not the locks.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.features.base import FeatureSet
from repro.index import ShardedFeatureIndex

N_THREADS = 32
IMAGES_PER_THREAD = 8


def _synthetic_features(image_id: str, seed: int, n_desc: int = 16) -> FeatureSet:
    rng = np.random.default_rng(seed)
    return FeatureSet(
        kind="orb",
        descriptors=rng.integers(0, 256, size=(n_desc, 32), dtype=np.uint8),
        xs=rng.uniform(0, 96, size=n_desc),
        ys=rng.uniform(0, 72, size=n_desc),
        pixels_processed=72 * 96,
        image_id=image_id,
    )


def _barrier_run(n_threads: int, work):
    """Run ``work(thread_no)`` on *n_threads* threads released together."""
    barrier = threading.Barrier(n_threads)

    def runner(thread_no: int):
        barrier.wait()
        return work(thread_no)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(runner, t) for t in range(n_threads)]
        return [future.result() for future in futures]


class TestConcurrentWrites:
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_no_lost_updates(self, n_shards):
        index = ShardedFeatureIndex(n_shards=n_shards)
        expected_ids = [
            f"t{t:02d}-i{i:02d}"
            for t in range(N_THREADS)
            for i in range(IMAGES_PER_THREAD)
        ]
        features = {
            image_id: _synthetic_features(image_id, seed=number)
            for number, image_id in enumerate(expected_ids)
        }

        def add_all(thread_no: int):
            for i in range(IMAGES_PER_THREAD):
                index.add(features[f"t{thread_no:02d}-i{i:02d}"])

        _barrier_run(N_THREADS, add_all)

        assert len(index) == len(expected_ids)
        assert sum(index.shard_sizes()) == len(expected_ids)
        assert index.image_ids() == sorted(expected_ids)
        for image_id in expected_ids:
            assert image_id in index
            assert index.features_of(image_id) is features[image_id]

    def test_no_duplicate_entries(self):
        index = ShardedFeatureIndex(n_shards=4)
        contested = _synthetic_features("contested", seed=1)

        def try_add(thread_no: int) -> bool:
            try:
                index.add(
                    _synthetic_features("contested", seed=100 + thread_no)
                    if thread_no % 2
                    else contested
                )
                return True
            except IndexError_:
                return False

        outcomes = _barrier_run(N_THREADS, try_add)

        assert sum(outcomes) == 1, "exactly one add of a contested id may win"
        assert len(index) == 1
        assert index.image_ids() == ["contested"]


class TestConcurrentReadsDuringWrites:
    def test_queries_never_crash_or_tear(self):
        index = ShardedFeatureIndex(n_shards=4)
        writers = N_THREADS // 2
        readers = N_THREADS - writers
        query = _synthetic_features("query", seed=999)

        def work(thread_no: int):
            if thread_no < writers:
                for i in range(IMAGES_PER_THREAD):
                    index.add(
                        _synthetic_features(
                            f"w{thread_no:02d}-i{i:02d}",
                            seed=thread_no * 1000 + i,
                        )
                    )
                return None
            answers = []
            for _ in range(IMAGES_PER_THREAD):
                result = index.query(query)
                answers.append(result)
                top = index.query_top(query, 3)
                assert len(top) <= 3
            return answers

        results = _barrier_run(N_THREADS, work)

        assert len(index) == writers * IMAGES_PER_THREAD
        for answers in results[writers:]:
            if answers is None:
                continue
            for result in answers:
                assert 0.0 <= result.best_similarity <= 1.0

    def test_post_race_queries_match_fresh_index(self):
        # Whatever interleaving happened above, the *final* index must
        # answer exactly like a cleanly-built one over the same images.
        raced = ShardedFeatureIndex(n_shards=4)
        ids = [f"img-{i:03d}" for i in range(N_THREADS)]
        features = {
            image_id: _synthetic_features(image_id, seed=i)
            for i, image_id in enumerate(ids)
        }
        _barrier_run(N_THREADS, lambda t: raced.add(features[ids[t]]))

        clean = ShardedFeatureIndex(n_shards=4)
        for image_id in ids:
            clean.add(features[image_id])

        probe = _synthetic_features("probe", seed=4242)
        assert raced.query(probe) == clean.query(probe)
        assert raced.query_top(probe, 5) == clean.query_top(probe, 5)


class TestLintGate:
    def test_bees103_passes_on_new_modules(self):
        """The seeded-RNG rule (BEES103) holds across the new code."""
        from repro import lint as lint_module

        rules = lint_module.resolve_rules(select=["BEES103"])
        result = lint_module.lint_paths(
            [
                "src/repro/fleet",
                "src/repro/index/sharded.py",
                "src/repro/schemes.py",
            ],
            rules=rules,
        )
        assert result.ok, lint_module.render_console(result)
