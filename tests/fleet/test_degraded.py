"""Fleet runs over degraded networks.

Three contracts:

* a zero-loss :class:`~repro.network.DegradedNetConfig` is invisible —
  the fleet's decision fingerprint matches the clean run bit for bit;
* under real loss the concurrent sharded run still equals the
  sequential reference (the degraded machinery is all device-local
  state, so the equivalence proof carries over);
* journaled ``chunk.*`` events are bound to the device whose uplink
  emitted them, even with the device jobs fanned out over threads.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetRunner, assert_equivalent
from repro.network import DegradedNetConfig
from repro.obs import journal_to, read_journal

N_ROUNDS = 2
BATCH_SIZE = 4
DEVICES = 4

LOSSY = DegradedNetConfig(
    bit_error_rate=1e-7, chunk_drop_rate=0.02, strategy="arq"
)


def _runner(mode, shards, net, seed=5, devices=DEVICES):
    return FleetRunner(
        n_devices=devices,
        n_rounds=N_ROUNDS,
        batch_size=BATCH_SIZE,
        n_shards=shards,
        seed=seed,
        mode=mode,
        net=net,
    )


class TestZeroLossInvisible:
    @pytest.mark.parametrize("strategy,replicas", [("arq", 3), ("replica", 1)])
    def test_fingerprint_matches_clean_run(self, strategy, replicas):
        clean = _runner("sequential", 1, None).run()
        degraded = _runner(
            "sequential",
            1,
            DegradedNetConfig(strategy=strategy, replicas=replicas),
        ).run()
        assert degraded.fingerprint() == clean.fingerprint()
        assert degraded.total_bytes == clean.total_bytes
        assert degraded.total_energy_joules == clean.total_energy_joules


class TestLossyEquivalence:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_concurrent_equals_sequential_under_loss(self, shards):
        reference = _runner("sequential", 1, LOSSY).run()
        concurrent = _runner("concurrent", shards, LOSSY).run()
        assert_equivalent(reference, concurrent)

    def test_lossy_run_deterministic(self):
        first = _runner("sequential", 1, LOSSY).run()
        second = _runner("sequential", 1, LOSSY).run()
        assert first.fingerprint() == second.fingerprint()

    def test_loss_costs_bytes_not_decisions(self):
        clean = _runner("sequential", 1, None).run()
        lossy = _runner("sequential", 1, LOSSY).run()
        # Decisions (which images upload) are loss-independent; only the
        # wire traffic and radio time change.
        for clean_dev, lossy_dev in zip(clean.devices, lossy.devices):
            assert lossy_dev.uploaded_ids == clean_dev.uploaded_ids
        assert lossy.total_bytes >= clean.total_bytes

    def test_replica_strategy_multiplies_bytes(self):
        # Under the direct scheme (no energy-aware feedback) upload
        # decisions cannot shift, so k replicas cost exactly k x bytes.
        def run(net):
            return FleetRunner(
                n_devices=DEVICES,
                n_rounds=N_ROUNDS,
                batch_size=BATCH_SIZE,
                n_shards=1,
                seed=5,
                mode="sequential",
                scheme="direct",
                net=net,
            ).run()

        clean = run(None)
        replicated = run(DegradedNetConfig(strategy="replica", replicas=3))
        assert replicated.total_bytes == 3 * clean.total_bytes


class TestChunkJournalEvents:
    def test_chunk_events_are_device_bound(self, tmp_path):
        path = tmp_path / "degraded.jsonl"
        with journal_to(str(path)):
            _runner("concurrent", 4, LOSSY).run()
        journal = read_journal(str(path))
        sends = journal.events("chunk.send")
        assert sends, "lossy fleet run emitted no chunk.send events"
        devices = {event.device for event in sends}
        assert devices <= {f"dev-{n:02d}" for n in range(DEVICES)}
        assert None not in devices
        acks = journal.events("chunk.ack")
        assert acks

    def test_run_start_records_net_profile(self, tmp_path):
        path = tmp_path / "start.jsonl"
        with journal_to(str(path)):
            _runner("sequential", 1, LOSSY).run()
        (start,) = read_journal(str(path)).events("fleet.run.start")
        net = start.data["net"]
        assert net["strategy"] == "arq"
        assert net["chunk_drop_rate"] == pytest.approx(0.02)

    def test_clean_run_emits_no_chunk_events(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        with journal_to(str(path)):
            _runner("sequential", 1, None).run()
        journal = read_journal(str(path))
        assert not journal.events("chunk.send")
