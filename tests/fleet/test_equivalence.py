"""Differential tests: concurrent sharded fleet ≡ sequential reference.

The tentpole correctness contract: for an identical seed and device
set, the concurrent run against a sharded index must produce **byte
identical** elimination decisions — kept and eliminated image ids,
total bytes sent, total joules — to the sequential run against a
single index.  Any drift (a lock reordering a commit, a shard changing
a tie-break, a float summed in a different order) must fail loudly
here.

Sequential references are computed once per (seed, devices) and shared
across the shard-count parametrisations to keep the suite's runtime
linear in the number of *distinct* workloads.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.fleet import FleetRunner, FleetWorkload, assert_equivalent

SEEDS = (5, 11)
DEVICE_COUNTS = (1, 4, 16)
SHARD_COUNTS = (1, 4)
N_ROUNDS = 2
BATCH_SIZE = 4

_reference_cache: dict = {}


def _runner(seed: int, devices: int, mode: str, shards: int) -> FleetRunner:
    return FleetRunner(
        n_devices=devices,
        n_rounds=N_ROUNDS,
        batch_size=BATCH_SIZE,
        n_shards=shards,
        seed=seed,
        mode=mode,
    )


def _reference(seed: int, devices: int):
    key = (seed, devices)
    if key not in _reference_cache:
        _reference_cache[key] = _runner(seed, devices, "sequential", 1).run()
    return _reference_cache[key]


class TestConcurrentEqualsSequential:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("devices", DEVICE_COUNTS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_byte_identical_decisions(self, seed, devices, shards):
        reference = _reference(seed, devices)
        concurrent = _runner(seed, devices, "concurrent", shards).run()

        # The headline contract, field by field (not just the hash).
        for ref_dev, con_dev in zip(reference.devices, concurrent.devices):
            assert con_dev.uploaded_ids == ref_dev.uploaded_ids
            assert con_dev.eliminated_cross_batch == ref_dev.eliminated_cross_batch
            assert con_dev.eliminated_in_batch == ref_dev.eliminated_in_batch
            assert con_dev.sent_bytes == ref_dev.sent_bytes
            # Byte-identical floats: == on purpose, no approx.
            assert con_dev.energy_joules == ref_dev.energy_joules
        assert concurrent.total_bytes == reference.total_bytes
        assert concurrent.total_energy_joules == reference.total_energy_joules
        assert concurrent.fingerprint() == reference.fingerprint()
        assert_equivalent(reference, concurrent)


class TestProcessIndexEqualsSequential:
    @pytest.mark.parametrize("mode", ("sequential", "concurrent"))
    def test_byte_identical_decisions(self, mode, monkeypatch):
        # Same contract with the index promoted to worker processes:
        # shared-memory shards must not change a single decision.
        # Fork context: the suite spawns short-lived pools.
        monkeypatch.setenv("REPRO_INDEX_MP_CONTEXT", "fork")
        reference = _reference(SEEDS[0], 4)
        process = FleetRunner(
            n_devices=4,
            n_rounds=N_ROUNDS,
            batch_size=BATCH_SIZE,
            n_shards=2,
            seed=SEEDS[0],
            mode=mode,
            index_mode="process",
        ).run()
        for ref_dev, proc_dev in zip(reference.devices, process.devices):
            assert proc_dev.uploaded_ids == ref_dev.uploaded_ids
            assert proc_dev.eliminated_cross_batch == ref_dev.eliminated_cross_batch
            assert proc_dev.eliminated_in_batch == ref_dev.eliminated_in_batch
            assert proc_dev.sent_bytes == ref_dev.sent_bytes
            assert proc_dev.energy_joules == ref_dev.energy_joules
        assert process.fingerprint() == reference.fingerprint()
        assert_equivalent(reference, process)

    def test_segment_journal_does_not_change_decisions(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_MP_CONTEXT", "fork")
        reference = _reference(SEEDS[0], 4)
        durable = FleetRunner(
            n_devices=4,
            n_rounds=N_ROUNDS,
            batch_size=BATCH_SIZE,
            n_shards=2,
            seed=SEEDS[0],
            mode="concurrent",
            index_mode="process",
            index_segment_dir=str(tmp_path / "segs"),
        ).run()
        assert durable.fingerprint() == reference.fingerprint()

    def test_invalid_index_mode_rejected(self):
        with pytest.raises(SimulationError, match="index_mode"):
            FleetRunner(index_mode="sharded")

    def test_segment_dir_requires_process_mode(self):
        with pytest.raises(SimulationError, match="index_segment_dir"):
            FleetRunner(index_segment_dir="/tmp/nope")


class TestContract:
    def test_multi_device_runs_actually_eliminate(self):
        # Guard against the differential suite passing vacuously on a
        # workload with nothing to eliminate.
        result = _reference(SEEDS[0], 4)
        eliminated = sum(
            len(d.eliminated_cross_batch) + len(d.eliminated_in_batch)
            for d in result.devices
        )
        assert eliminated > 0
        assert result.total_uploaded > 0

    def test_repeated_run_is_deterministic(self):
        first = _reference(SEEDS[0], 4)
        again = _runner(SEEDS[0], 4, "sequential", 1).run()
        assert again.fingerprint() == first.fingerprint()

    def test_mismatch_produces_a_readable_diff(self):
        a = _reference(SEEDS[0], 1)
        b = _runner(SEEDS[1], 1, "sequential", 1).run()
        with pytest.raises(SimulationError) as excinfo:
            assert_equivalent(a, b)
        message = str(excinfo.value)
        assert "not equivalent" in message
        assert "dev-00" in message

    def test_workload_is_a_pure_function(self):
        workload = FleetWorkload(n_devices=2, n_rounds=2, batch_size=4, seed=9)
        first = workload.batch_for(1, 1)
        again = workload.batch_for(1, 1)
        assert [image.image_id for image in first] == [
            image.image_id for image in again
        ]
        assert all(
            (a.bitmap == b.bitmap).all() for a, b in zip(first, again)
        )
