"""Tests for the real-image folder dataset."""

import pytest

from repro.datasets.folder import FolderDataset, group_from_name
from repro.errors import DatasetError
from repro.imaging.io import write_ppm


@pytest.fixture()
def photo_dir(generator, tmp_path):
    """A folder of PPM 'photos': two views of two scenes + a single."""
    for name, (scene, view) in {
        "bridge-1": (500, 0),
        "bridge-2": (500, 1),
        "tower-1": (501, 0),
        "tower-2": (501, 1),
        "rubble": (502, 0),
    }.items():
        write_ppm(generator.view(scene, view), tmp_path / f"{name}.ppm")
    (tmp_path / "notes.txt").write_text("ignore me")
    return tmp_path


class TestGroupNaming:
    def test_dash_convention(self):
        assert group_from_name("bridge-2") == "bridge"
        assert group_from_name("a-b-3") == "a-b"

    def test_singleton(self):
        assert group_from_name("tower") == "tower"

    def test_leading_dash_not_a_group(self):
        assert group_from_name("-x") == "-x"


class TestFolderDataset:
    def test_loads_supported_files_only(self, photo_dir):
        dataset = FolderDataset(photo_dir)
        assert len(dataset) == 5

    def test_iteration_yields_labelled_images(self, photo_dir):
        dataset = FolderDataset(photo_dir)
        images = list(dataset)
        by_id = {image.image_id: image for image in images}
        assert by_id["bridge-1"].group_id == "bridge"
        assert by_id["rubble"].group_id == "rubble"

    def test_groups(self, photo_dir):
        groups = FolderDataset(photo_dir).groups()
        assert sorted(groups["bridge"]) == ["bridge-1", "bridge-2"]
        assert groups["rubble"] == ["rubble"]

    def test_rejects_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError):
            FolderDataset(tmp_path / "nope")

    def test_rejects_empty_directory(self, tmp_path):
        with pytest.raises(DatasetError):
            FolderDataset(tmp_path)

    def test_pipeline_runs_on_folder_images(self, photo_dir):
        """End to end on 'real' files: BEES eliminates the second view
        of each multi-view scene."""
        from repro.core.client import BeesScheme
        from repro.sim.device import Smartphone
        from repro.sim.session import build_server

        batch = list(FolderDataset(photo_dir))
        scheme = BeesScheme()
        report = scheme.process_batch(Smartphone(), build_server(scheme), batch)
        assert report.n_uploaded == 3
        assert len(report.eliminated_in_batch) == 2
