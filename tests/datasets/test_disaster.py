"""Tests for the disaster batch generator."""

import numpy as np
import pytest

from repro.datasets.disaster import DisasterDataset
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def data():
    return DisasterDataset()


class TestBatchStructure:
    def test_size(self, data):
        batch = data.make_batch(n_images=20, n_inbatch_similar=3)
        assert len(batch) == 20

    def test_in_batch_duplicate_count(self, data):
        batch = data.make_batch(n_images=20, n_inbatch_similar=3)
        counts = {}
        for image in batch:
            counts[image.group_id] = counts.get(image.group_id, 0) + 1
        assert sum(1 for c in counts.values() if c == 2) == 3
        assert len(counts) == 17

    def test_no_duplicates_mode(self, data):
        batch = data.make_batch(n_images=10, n_inbatch_similar=0)
        assert len({image.group_id for image in batch}) == 10

    def test_deterministic(self, data):
        a = data.make_batch(n_images=10, n_inbatch_similar=2, seed=3)
        b = data.make_batch(n_images=10, n_inbatch_similar=2, seed=3)
        assert [i.image_id for i in a] == [i.image_id for i in b]
        assert np.array_equal(a[0].bitmap, b[0].bitmap)

    def test_scene_offset_gives_fresh_scenes(self, data):
        a = data.make_batch(n_images=5, n_inbatch_similar=0, scene_offset=0)
        b = data.make_batch(n_images=5, n_inbatch_similar=0, scene_offset=100)
        assert not set(i.group_id for i in a) & set(i.group_id for i in b)

    def test_rejects_too_many_duplicates(self, data):
        with pytest.raises(DatasetError):
            data.make_batch(n_images=10, n_inbatch_similar=6)

    def test_rejects_empty_batch(self, data):
        with pytest.raises(DatasetError):
            data.make_batch(n_images=0)


class TestCrossBatchPartners:
    def test_partner_count_matches_ratio(self, data):
        batch = data.make_batch(n_images=20, n_inbatch_similar=3)
        partners = data.cross_batch_partners(batch, 0.25)
        assert len(partners) == 5

    def test_partners_target_singleton_scenes(self, data):
        batch = data.make_batch(n_images=20, n_inbatch_similar=3)
        duplicated = {
            group
            for group in (image.group_id for image in batch)
            if sum(1 for i in batch if i.group_id == group) == 2
        }
        partners = data.cross_batch_partners(batch, 0.5)
        for partner in partners:
            assert partner.group_id not in duplicated

    def test_partner_ids_distinct_from_batch(self, data):
        batch = data.make_batch(n_images=20, n_inbatch_similar=3)
        partners = data.cross_batch_partners(batch, 0.5)
        batch_ids = {image.image_id for image in batch}
        assert not batch_ids & {p.image_id for p in partners}

    def test_partners_highly_similar_to_targets(self, data, orb):
        """Seeded partners must exceed the paper's 0.3 detectability bar."""
        from repro.features.similarity import jaccard_similarity

        batch = data.make_batch(n_images=12, n_inbatch_similar=0)
        partners = data.cross_batch_partners(batch, 0.25)
        by_group = {image.group_id: image for image in batch}
        for partner in partners:
            target = by_group[partner.group_id]
            sim = jaccard_similarity(orb.extract(partner), orb.extract(target))
            assert sim > 0.1

    def test_zero_ratio_no_partners(self, data):
        batch = data.make_batch(n_images=10, n_inbatch_similar=0)
        assert data.cross_batch_partners(batch, 0.0) == []

    def test_ratio_beyond_singletons_rejected(self, data):
        batch = data.make_batch(n_images=10, n_inbatch_similar=4)
        # Only 2 singleton scenes exist; 50% of 10 = 5 > 2.
        with pytest.raises(DatasetError):
            data.cross_batch_partners(batch, 0.5)

    def test_rejects_bad_ratio(self, data):
        batch = data.make_batch(n_images=10, n_inbatch_similar=0)
        with pytest.raises(DatasetError):
            data.cross_batch_partners(batch, 1.5)
