"""Tests for dataset helpers."""

import pytest

from repro.datasets.base import batched
from repro.errors import DatasetError


class TestBatched:
    def test_even_split(self):
        assert batched(list(range(6)), 2) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert batched(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_batch_larger_than_input(self):
        assert batched([1, 2], 10) == [[1, 2]]

    def test_empty_input(self):
        assert batched([], 3) == []

    def test_rejects_bad_size(self):
        with pytest.raises(DatasetError):
            batched([1], 0)
