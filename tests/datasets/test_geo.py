"""Tests for geospatial helpers."""

import pytest

from repro.datasets.geo import PARIS_TEST_BOX, BoundingBox, unique_locations
from repro.errors import DatasetError


class TestBoundingBox:
    def test_paris_test_box_constants(self):
        box = BoundingBox.paris_test()
        assert (box.lon_min, box.lon_max, box.lat_min, box.lat_max) == PARIS_TEST_BOX

    def test_contains_inside(self):
        box = BoundingBox.paris_test()
        assert box.contains(2.32, 48.86)

    def test_contains_boundary(self):
        box = BoundingBox.paris_test()
        assert box.contains(2.31, 48.855)

    def test_excludes_outside(self):
        box = BoundingBox.paris_test()
        assert not box.contains(2.5, 48.86)
        assert not box.contains(2.32, 48.9)

    def test_rejects_degenerate(self):
        with pytest.raises(DatasetError):
            BoundingBox(1.0, 1.0, 0.0, 1.0)


class TestUniqueLocations:
    def test_counts_distinct(self):
        tags = [(1.0, 2.0), (1.0, 2.0), (3.0, 4.0)]
        assert unique_locations(tags) == 2

    def test_ignores_none(self):
        assert unique_locations([None, (1.0, 2.0), None]) == 1

    def test_empty(self):
        assert unique_locations([]) == 0
