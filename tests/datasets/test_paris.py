"""Tests for the synthetic Paris imageset."""

import numpy as np
import pytest

from repro.datasets.geo import BoundingBox
from repro.datasets.paris import SyntheticParis
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def paris():
    return SyntheticParis(n_images=200, n_locations=50, seed=1)


class TestAllocation:
    def test_total_images(self, paris):
        assert paris.location_counts.sum() == 200
        assert len(paris) == 200

    def test_every_location_has_an_image(self, paris):
        assert (paris.location_counts >= 1).all()

    def test_heavy_tail(self, paris):
        counts = paris.location_counts
        # Zipf head: the densest location holds far more than the median.
        assert counts.max() >= 5 * np.median(counts)

    def test_deterministic(self):
        a = SyntheticParis(n_images=100, n_locations=20, seed=3)
        b = SyntheticParis(n_images=100, n_locations=20, seed=3)
        assert np.array_equal(a.location_counts, b.location_counts)
        assert a.location(5) == b.location(5)

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            SyntheticParis(n_images=10, n_locations=20)
        with pytest.raises(DatasetError):
            SyntheticParis(n_images=0)
        with pytest.raises(DatasetError):
            SyntheticParis(zipf_exponent=0.0)


class TestGeotags:
    def test_locations_inside_box(self, paris):
        box = BoundingBox.paris_test()
        for index in range(paris.n_locations):
            lon, lat = paris.location(index)
            assert box.contains(lon, lat)

    def test_images_carry_location_geotag(self, paris):
        image = paris.image(3, 0)
        assert image.geotag == paris.location(3)

    def test_same_location_same_geotag(self, paris):
        dense = int(np.argmax(paris.location_counts))
        a = paris.image(dense, 0)
        b = paris.image(dense, 1)
        assert a.geotag == b.geotag
        assert a.group_id == b.group_id

    def test_rejects_bad_refs(self, paris):
        with pytest.raises(DatasetError):
            paris.image(paris.n_locations, 0)
        with pytest.raises(DatasetError):
            paris.image(0, 10**6)


class TestSimilarityStructure:
    def test_same_location_images_similar(self, paris, orb):
        from repro.features.similarity import jaccard_similarity

        dense = int(np.argmax(paris.location_counts))
        a = orb.extract(paris.image(dense, 0))
        b = orb.extract(paris.image(dense, 1))
        assert jaccard_similarity(a, b) > 0.1

    def test_different_locations_dissimilar(self, paris, orb):
        from repro.features.similarity import jaccard_similarity

        a = orb.extract(paris.image(0, 0))
        b = orb.extract(paris.image(30, 0))
        assert jaccard_similarity(a, b) < 0.05


class TestRefs:
    def test_image_refs_cover_dataset(self, paris):
        refs = paris.image_refs()
        assert len(refs) == 200
        assert len(set(refs)) == 200

    def test_shuffled_refs_permutation(self, paris):
        shuffled = paris.shuffled_refs(seed=9)
        assert sorted(shuffled) == sorted(paris.image_refs())
        assert shuffled != paris.image_refs()

    def test_shuffle_seeded(self, paris):
        assert paris.shuffled_refs(seed=9) == paris.shuffled_refs(seed=9)

    def test_iteration_matches_refs(self, paris):
        ids = [image.image_id for image in paris]
        assert len(ids) == 200
        assert len(set(ids)) == 200
