"""Tests for the synthetic Kentucky imageset."""

import numpy as np
import pytest

from repro.datasets.kentucky import VIEWS_PER_GROUP, SyntheticKentucky
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def kentucky():
    return SyntheticKentucky(n_groups=8)


class TestStructure:
    def test_len(self, kentucky):
        assert len(kentucky) == 8 * VIEWS_PER_GROUP

    def test_groups_of_four(self, kentucky):
        group = kentucky.group(3)
        assert len(group) == 4
        assert len({image.group_id for image in group}) == 1

    def test_unique_image_ids(self, kentucky):
        ids = [image.image_id for image in kentucky]
        assert len(ids) == len(set(ids))

    def test_iteration_covers_all(self, kentucky):
        assert sum(1 for _ in kentucky) == len(kentucky)

    def test_query_images_one_per_group(self, kentucky):
        queries = kentucky.query_images()
        assert len(queries) == 8
        assert len({image.group_id for image in queries}) == 8

    def test_deterministic(self):
        a = SyntheticKentucky(n_groups=3).image(1, 2)
        b = SyntheticKentucky(n_groups=3).image(1, 2)
        assert np.array_equal(a.bitmap, b.bitmap)

    def test_views_differ(self, kentucky):
        group = kentucky.group(0)
        assert not np.array_equal(group[0].bitmap, group[1].bitmap)


class TestValidation:
    def test_rejects_bad_group(self, kentucky):
        with pytest.raises(DatasetError):
            kentucky.image(8, 0)

    def test_rejects_bad_view(self, kentucky):
        with pytest.raises(DatasetError):
            kentucky.image(0, 4)

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            SyntheticKentucky(n_groups=0)
        with pytest.raises(DatasetError):
            SyntheticKentucky(shared_fraction=2.0)


class TestLabeledPairs:
    def test_similar_pairs_same_group(self, kentucky):
        pairs = kentucky.similar_pairs(10)
        assert len(pairs) == 10
        for pair in pairs:
            assert pair.similar
            assert pair.first.group_id == pair.second.group_id
            assert pair.first.image_id != pair.second.image_id

    def test_dissimilar_pairs_cross_group(self, kentucky):
        pairs = kentucky.dissimilar_pairs(10)
        for pair in pairs:
            assert not pair.similar
            assert pair.first.group_id != pair.second.group_id

    def test_pairs_seeded(self, kentucky):
        a = [(p.first.image_id, p.second.image_id) for p in kentucky.similar_pairs(5, seed=3)]
        b = [(p.first.image_id, p.second.image_id) for p in kentucky.similar_pairs(5, seed=3)]
        assert a == b

    def test_ground_truth_separation(self, kentucky, orb):
        """Similar pairs must score far above dissimilar ones (Fig. 4)."""
        from repro.features.similarity import jaccard_similarity

        similar = kentucky.similar_pairs(5, seed=1)
        dissimilar = kentucky.dissimilar_pairs(5, seed=2)
        sim_scores = [
            jaccard_similarity(orb.extract(p.first), orb.extract(p.second))
            for p in similar
        ]
        dis_scores = [
            jaccard_similarity(orb.extract(p.first), orb.extract(p.second))
            for p in dissimilar
        ]
        assert min(sim_scores) > 0.1
        assert max(dis_scores) < 0.05
