"""Tests for the PhotoNet metadata baseline."""

import numpy as np
import pytest

from repro.baselines.photonet import (
    BINS_PER_CHANNEL,
    PhotoNet,
    colour_histogram,
    histogram_intersection,
)
from repro.core.client import BeesScheme
from repro.core.server import BeesServer
from repro.errors import FeatureError
from repro.sim.device import Smartphone
from repro.sim.session import build_server


class TestHistogram:
    def test_shape_and_normalisation(self, scene_image):
        histogram = colour_histogram(scene_image)
        assert histogram.shape == (3 * BINS_PER_CHANNEL,)
        # Each channel block sums to 1.
        for channel in range(3):
            block = histogram[channel * BINS_PER_CHANNEL : (channel + 1) * BINS_PER_CHANNEL]
            assert block.sum() == pytest.approx(1.0)

    def test_self_intersection_is_one(self, scene_image):
        histogram = colour_histogram(scene_image)
        assert histogram_intersection(histogram, histogram) == pytest.approx(1.0)

    def test_same_scene_high_intersection(self, scene_image, scene_image_alt_view):
        a = colour_histogram(scene_image)
        b = colour_histogram(scene_image_alt_view)
        assert histogram_intersection(a, b) > 0.85

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FeatureError):
            histogram_intersection(np.zeros(8), np.zeros(16))

    def test_bounded(self, scene_image, other_scene_image):
        score = histogram_intersection(
            colour_histogram(scene_image), colour_histogram(other_scene_image)
        )
        assert 0.0 <= score <= 1.0


class TestPhotoNetScheme:
    def test_eliminates_cross_batch_same_scene(self, generator):
        scheme = PhotoNet()
        server = BeesServer()
        device = Smartphone()
        first = [generator.view(70, 0, image_id="p70a")]
        second = [generator.view(70, 1, image_id="p70b")]
        scheme.process_batch(device, server, first)
        report = scheme.process_batch(device, server, second)
        assert report.eliminated_cross_batch == ["p70b"]

    def test_uploads_distinct_scenes(self, generator):
        scheme = PhotoNet()
        server = BeesServer()
        device = Smartphone()
        batch = [
            generator.view(scene, 0, image_id=f"p{scene}") for scene in (71, 72, 73)
        ]
        report = scheme.process_batch(device, server, batch)
        # Histograms of unrelated scenes may still collide (the known
        # weakness), but at least one distinct scene gets through.
        assert report.n_uploaded >= 1
        assert report.n_uploaded + len(report.eliminated_cross_batch) == 3

    def test_cheap_detection(self, generator):
        """PhotoNet's detection energy is far below feature extraction —
        its selling point in DTNs."""
        from repro.energy import FEATURE_EXTRACTION

        batch = [generator.view(74, 0, image_id="p74")]
        photonet_device = Smartphone()
        PhotoNet().process_batch(photonet_device, BeesServer(), batch)
        bees_device = Smartphone()
        scheme = BeesScheme()
        scheme.process_batch(bees_device, build_server(scheme), batch)
        # Histogramming is charged like one codec pass; cheaper than
        # even ORB feature extraction + feature upload.
        assert (
            photonet_device.meter.get(FEATURE_EXTRACTION)
            < bees_device.meter.get(FEATURE_EXTRACTION) * 5
        )

    def test_metadata_confuses_similar_palettes(self, generator):
        """The known failure mode: a dissimilar image with a matching
        palette can be falsely eliminated — why CARE/BEES moved to real
        features.  We only assert the mechanism exists: intersection of
        some unrelated pair exceeds what feature matching would score."""
        scores = []
        base = colour_histogram(generator.view(80, 0))
        for scene in range(81, 95):
            other = colour_histogram(generator.view(scene, 0))
            scores.append(histogram_intersection(base, other))
        # Unrelated scenes routinely score high on palette similarity.
        assert max(scores) > 0.7
