"""Tests for the BEES-EA construction."""

import pytest

from repro.baselines.bees_ea import make_bees_ea
from repro.core.client import BeesScheme


class TestBeesEa:
    def test_name(self):
        assert make_bees_ea().name == "BEES-EA"

    def test_is_a_bees_scheme(self):
        assert isinstance(make_bees_ea(), BeesScheme)

    def test_policies_constant_in_ebat(self):
        config = make_bees_ea().config
        for ebat in (0.0, 0.3, 1.0):
            assert config.eac(ebat) == 0.0
            assert config.eau(ebat) == 0.0
            assert config.edr(ebat) == pytest.approx(0.019)

    def test_overrides_forwarded(self):
        scheme = make_bees_ea(enable_ssmm=False)
        assert not scheme.config.enable_ssmm

    def test_behaviour_invariant_to_battery(self, small_batch_features):
        """BEES-EA processes a batch identically at any charge level."""
        from repro.core.server import BeesServer
        from repro.sim.device import Smartphone

        images, _ = small_batch_features
        uploads = []
        for fraction in (1.0, 0.3):
            device = Smartphone()
            device.battery.recharge(fraction)
            report = make_bees_ea().process_batch(device, BeesServer(), images)
            uploads.append(sorted(report.uploaded_ids))
        assert uploads[0] == uploads[1]
