"""Tests for Direct Upload."""


from repro.baselines.direct import DirectUpload
from repro.core.server import BeesServer
from repro.energy import IMAGE_UPLOAD, Battery
from repro.sim.device import Smartphone


class TestDirectUpload:
    def test_uploads_everything(self, small_batch_features):
        images, _ = small_batch_features
        report = DirectUpload().process_batch(Smartphone(), BeesServer(), images)
        assert report.n_uploaded == len(images)
        assert not report.eliminated_cross_batch
        assert not report.eliminated_in_batch

    def test_full_size_payloads(self, small_batch_features):
        images, _ = small_batch_features
        report = DirectUpload().process_batch(Smartphone(), BeesServer(), images)
        assert report.sent_bytes == sum(image.nominal_bytes for image in images)

    def test_only_image_upload_energy(self, small_batch_features):
        images, _ = small_batch_features
        report = DirectUpload().process_batch(Smartphone(), BeesServer(), images)
        assert set(report.energy_by_category) == {IMAGE_UPLOAD}

    def test_server_receives_and_indexes(self, small_batch_features):
        images, _ = small_batch_features
        server = BeesServer()
        DirectUpload().process_batch(Smartphone(), server, images)
        assert len(server.store) == len(images)
        assert len(server.index) == len(images)

    def test_no_indexing_mode(self, small_batch_features):
        images, _ = small_batch_features
        server = BeesServer()
        DirectUpload(index_on_server=False).process_batch(Smartphone(), server, images)
        assert len(server.store) == len(images)
        assert len(server.index) == 0

    def test_battery_death_halts(self, small_batch_features):
        images, _ = small_batch_features
        device = Smartphone()
        device.battery = Battery(capacity_joules=50.0)  # ~1 upload worth
        report = DirectUpload().process_batch(device, BeesServer(), images)
        assert report.halted
        assert report.n_uploaded < len(images)

    def test_per_image_delay_is_transfer_time(self, small_batch_features):
        images, _ = small_batch_features
        report = DirectUpload().process_batch(Smartphone(), BeesServer(), images)
        assert len(report.per_image_seconds) == len(images)
        # ~700 KB at 128-384 Kbps: between 15 s and 50 s each.
        for seconds in report.per_image_seconds:
            assert 10 < seconds < 60
