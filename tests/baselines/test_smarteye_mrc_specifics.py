"""Scheme-specific behaviours of SmartEye and MRC."""

import pytest

from repro.baselines.mrc import THUMBNAIL_BYTES, Mrc
from repro.baselines.smarteye import SmartEye
from repro.energy import COMPRESSION
from repro.sim.device import Smartphone
from repro.sim.session import build_server


class TestSmartEyeSpecifics:
    def test_uses_pca_sift(self):
        assert SmartEye().feature_kind == "pca-sift"

    def test_no_thumbnail_payload(self):
        assert SmartEye().query_extra_bytes() == 0

    def test_server_index_is_pca_sift(self):
        assert build_server(SmartEye()).index.kind == "pca-sift"

    def test_extraction_energy_dominates_mrc(self, small_batch_features):
        """PCA-SIFT extraction is the expensive part of SmartEye."""
        from repro.energy import FEATURE_EXTRACTION

        images, _ = small_batch_features
        device = Smartphone()
        scheme = SmartEye()
        scheme.process_batch(device, build_server(scheme), images[:3])
        mrc_device = Smartphone()
        Mrc().process_batch(mrc_device, build_server(Mrc()), images[:3])
        assert device.meter.get(FEATURE_EXTRACTION) > 10 * mrc_device.meter.get(
            FEATURE_EXTRACTION
        )


class TestMrcSpecifics:
    def test_uses_orb(self):
        assert Mrc().feature_kind == "orb"

    def test_thumbnail_payload_declared(self):
        assert Mrc().query_extra_bytes() == THUMBNAIL_BYTES

    def test_thumbnail_generation_charged(self, small_batch_features):
        images, _ = small_batch_features
        device = Smartphone()
        scheme = Mrc()
        scheme.process_batch(device, build_server(scheme), images[:3])
        assert device.meter.get(COMPRESSION) > 0

    def test_thumbnails_add_bandwidth_per_image(self, small_batch_features):
        """Every queried image ships a thumbnail, redundant or not."""
        images, _ = small_batch_features
        batch = images[:4]
        device = Smartphone()
        scheme = Mrc()
        report = scheme.process_batch(device, build_server(scheme), batch)
        slim = Mrc(thumbnail_bytes=1)
        slim_device = Smartphone()
        slim_report = slim.process_batch(slim_device, build_server(slim), batch)
        extra = report.sent_bytes - slim_report.sent_bytes
        assert extra == pytest.approx((THUMBNAIL_BYTES - 1) * len(batch))

    def test_custom_thumbnail_size(self):
        assert Mrc(thumbnail_bytes=4096).query_extra_bytes() == 4096
