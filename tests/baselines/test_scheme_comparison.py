"""Cross-scheme ordering tests — the qualitative claims of Figs. 7-11.

These run one controlled batch through every scheme and assert the
*orderings* the paper's evaluation reports, which is the contract the
benchmark harness regenerates quantitatively.
"""

import pytest

from repro.baselines import DirectUpload, Mrc, SmartEye, make_bees_ea
from repro.core.client import BeesScheme
from repro.datasets import DisasterDataset
from repro.energy import FEATURE_EXTRACTION
from repro.sim.device import Smartphone
from repro.sim.session import build_server


@pytest.fixture(scope="module")
def reports():
    data = DisasterDataset()
    batch = data.make_batch(n_images=24, n_inbatch_similar=3, seed=5)
    partners = data.cross_batch_partners(batch, 0.25, seed=6)
    results = {}
    for scheme in (DirectUpload(), SmartEye(), Mrc(), make_bees_ea(), BeesScheme()):
        server = build_server(scheme, partners)
        results[scheme.name] = scheme.process_batch(Smartphone(), server, batch)
    return results


class TestEnergyOrdering:
    def test_bees_cheapest(self, reports):
        bees = reports["BEES"].total_energy_joules
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert bees < reports[name].total_energy_joules

    def test_mrc_cheaper_than_smarteye(self, reports):
        # PCA-SIFT extraction costs more than ORB (Figure 7).
        assert reports["MRC"].total_energy_joules < reports["SmartEye"].total_energy_joules

    def test_bees_reduces_most_of_mrc_energy(self, reports):
        # Paper: 67.3-70.8% reduction vs MRC at these redundancy levels.
        saving = 1 - reports["BEES"].total_energy_joules / reports["MRC"].total_energy_joules
        assert saving > 0.5

    def test_smarteye_extraction_dominates(self, reports):
        smarteye = reports["SmartEye"].energy_by_category[FEATURE_EXTRACTION]
        mrc = reports["MRC"].energy_by_category[FEATURE_EXTRACTION]
        assert smarteye > 10 * mrc


class TestBandwidthOrdering:
    def test_bees_sends_least(self, reports):
        bees = reports["BEES"].sent_bytes
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert bees < reports[name].sent_bytes

    def test_mrc_thumbnails_cost_bandwidth_over_smarteye_features(self, reports):
        # Both eliminate the same images; MRC adds thumbnails but
        # SmartEye's PCA-SIFT features are bigger per image — MRC's
        # total stays within ~25% of SmartEye's (Figure 10 shows them
        # close, MRC "a little more" on their hardware).
        ratio = reports["MRC"].sent_bytes / reports["SmartEye"].sent_bytes
        assert 0.75 < ratio < 1.25


class TestDelayOrdering:
    def test_direct_slowest(self, reports):
        direct = reports["Direct Upload"].average_image_seconds
        for name in ("SmartEye", "MRC", "BEES"):
            assert reports[name].average_image_seconds < direct

    def test_bees_fastest(self, reports):
        bees = reports["BEES"].average_image_seconds
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert bees < reports[name].average_image_seconds


class TestEliminationStructure:
    def test_only_bees_family_eliminates_in_batch(self, reports):
        assert reports["BEES"].eliminated_in_batch
        assert reports["BEES-EA"].eliminated_in_batch
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert not reports[name].eliminated_in_batch

    def test_cross_batch_detected_by_all_smart_schemes(self, reports):
        for name in ("SmartEye", "MRC", "BEES", "BEES-EA"):
            assert len(reports[name].eliminated_cross_batch) >= 5

    def test_bees_ea_equals_bees_at_full_battery(self, reports):
        # With Ebat = 1 the adaptive policies sit at their EA-pinned
        # values, so the two pipelines upload the same images.
        assert sorted(reports["BEES"].uploaded_ids) == sorted(
            reports["BEES-EA"].uploaded_ids
        )
