"""Tests for the two-phase cross-batch-only protocol (SmartEye/MRC base)."""

import pytest

from repro.baselines.mrc import Mrc
from repro.baselines.smarteye import SmartEye
from repro.energy import Battery
from repro.sim.device import Smartphone
from repro.sim.session import build_server


@pytest.fixture(scope="module", params=[Mrc, SmartEye])
def scheme_cls(request):
    return request.param


class TestTwoPhaseProtocol:
    def test_in_batch_duplicates_slip_through(self, scheme_cls, small_batch_features):
        """The defining blindness: queries run against the batch-start
        index, so both views of one scene upload."""
        images, _ = small_batch_features
        scheme = scheme_cls()
        report = scheme.process_batch(Smartphone(), build_server(scheme), images)
        assert report.n_uploaded == len(images)
        assert not report.eliminated_in_batch

    def test_cross_batch_duplicates_eliminated(
        self, scheme_cls, small_batch_features, generator
    ):
        images, _ = small_batch_features
        scheme = scheme_cls()
        partner = generator.view(20, 3, image_id="seed20", group_id="s20")
        server = build_server(scheme, [partner])
        report = scheme.process_batch(Smartphone(), server, images)
        eliminated = set(report.eliminated_cross_batch)
        assert {"s20v0", "s20v1"} <= eliminated

    def test_eliminated_images_pay_detection_cost_only(
        self, scheme_cls, small_batch_features, generator
    ):
        images, _ = small_batch_features
        scheme = scheme_cls()
        partner = generator.view(20, 3, image_id="seed20", group_id="s20")
        server = build_server(scheme, [partner])
        report = scheme.process_batch(Smartphone(), server, images)
        # All images get per-image timings; the eliminated ones are fast.
        assert len(report.per_image_seconds) == len(images)
        assert min(report.per_image_seconds) < max(report.per_image_seconds)

    def test_halts_on_battery_death(self, scheme_cls, small_batch_features):
        images, _ = small_batch_features
        device = Smartphone()
        device.battery = Battery(capacity_joules=30.0)
        scheme = scheme_cls()
        report = scheme.process_batch(device, build_server(scheme), images)
        assert report.halted
