"""Tests for the epidemic DTN simulation."""

import pytest

from repro.dtn.node import CareDropPolicy, CarriedImage, FifoDropPolicy
from repro.dtn.routing import EpidemicSimulation
from repro.errors import SimulationError
from repro.features.orb import OrbExtractor
from repro.imaging.synth import SceneGenerator


@pytest.fixture(scope="module")
def workload():
    """12 carried images over 8 scenes (4 scenes duplicated)."""
    generator = SceneGenerator(height=72, width=96)
    extractor = OrbExtractor()
    items = []
    for scene in range(8):
        views = 2 if scene < 4 else 1
        for view in range(views):
            image = generator.view(
                scene + 400, view, image_id=f"w{scene}-{view}", group_id=f"s{scene}"
            )
            items.append(CarriedImage(image=image, features=extractor.extract(image)))
    return items


def _sim(policy_factory, seed=3, capacity=3):
    return EpidemicSimulation(
        n_nodes=4,
        buffer_capacity=capacity,
        policy_factory=policy_factory,
        contact_bandwidth=2,
        contacts_per_round=2,
        gateway_probability=0.2,
        seed=seed,
    )


class TestValidation:
    def test_rejects_single_node(self):
        with pytest.raises(SimulationError):
            EpidemicSimulation(n_nodes=1, buffer_capacity=2)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(SimulationError):
            EpidemicSimulation(n_nodes=3, buffer_capacity=2, contact_bandwidth=0)

    def test_rejects_bad_gateway_probability(self):
        with pytest.raises(SimulationError):
            EpidemicSimulation(n_nodes=3, buffer_capacity=2, gateway_probability=1.5)

    def test_inject_bounds(self, workload):
        sim = _sim(FifoDropPolicy)
        with pytest.raises(SimulationError):
            sim.inject(99, workload[0])

    def test_negative_rounds_rejected(self):
        with pytest.raises(SimulationError):
            _sim(FifoDropPolicy).run(-1)


class TestDynamics:
    def test_deterministic(self, workload):
        outcomes = []
        for _ in range(2):
            sim = _sim(CareDropPolicy, seed=5)
            for index, item in enumerate(workload):
                sim.inject(index % sim.n_nodes, item)
            outcomes.append(sim.run(20).delivered_ids)
        assert outcomes[0] == outcomes[1]

    def test_images_eventually_delivered(self, workload):
        sim = _sim(FifoDropPolicy, capacity=12)
        for index, item in enumerate(workload):
            sim.inject(index % sim.n_nodes, item)
        report = sim.run(40)
        assert report.n_delivered > 0
        assert report.transmissions > 0

    def test_delivery_ids_unique(self, workload):
        sim = _sim(FifoDropPolicy, capacity=12)
        for index, item in enumerate(workload):
            sim.inject(index % sim.n_nodes, item)
        report = sim.run(40)
        assert len(report.delivered_ids) == len(set(report.delivered_ids))

    def test_unique_groups_bounded(self, workload):
        sim = _sim(CareDropPolicy, capacity=12)
        for index, item in enumerate(workload):
            sim.inject(index % sim.n_nodes, item)
        report = sim.run(40)
        assert report.n_unique_groups <= 8


class TestCareVsFifo:
    def test_care_delivers_more_distinct_scenes_under_pressure(self, workload):
        """The CARE result: with tight buffers, content-aware dropping
        preserves more *distinct* information end to end."""
        def deliver(policy_factory):
            groups = set()
            for seed in range(4):
                sim = _sim(policy_factory, seed=seed, capacity=2)
                for index, item in enumerate(workload):
                    sim.inject(index % sim.n_nodes, item)
                report = sim.run(25)
                groups.add((seed, report.n_unique_groups))
            return sum(count for _, count in groups)

        assert deliver(CareDropPolicy) >= deliver(FifoDropPolicy)
