"""Tests for lossy DTN contacts and gateway-side reconciliation."""

import pytest

from repro.dtn.node import CarriedImage, FifoDropPolicy
from repro.dtn.routing import EpidemicSimulation
from repro.errors import NetworkError
from repro.features.orb import OrbExtractor
from repro.imaging.synth import SceneGenerator
from repro.network import ContactLoss

from ..network.faults import PlannedContactLoss


@pytest.fixture(scope="module")
def workload():
    """10 carried images over 10 distinct scenes."""
    generator = SceneGenerator(height=72, width=96)
    extractor = OrbExtractor()
    return [
        CarriedImage(
            image=(
                image := generator.view(
                    scene + 700, 0, image_id=f"l{scene}", group_id=f"g{scene}"
                )
            ),
            features=extractor.extract(image),
        )
        for scene in range(10)
    ]


def _sim(loss=None, seed=3, capacity=12):
    return EpidemicSimulation(
        n_nodes=4,
        buffer_capacity=capacity,
        policy_factory=FifoDropPolicy,
        contact_bandwidth=2,
        contacts_per_round=2,
        gateway_probability=0.2,
        seed=seed,
        loss=loss,
    )


def _inject_and_run(sim, workload, rounds=40):
    for index, item in enumerate(workload):
        sim.inject(index % sim.n_nodes, item)
    return sim.run(rounds)


class TestContactLossValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"drop_rate": 1.0}, {"drop_rate": -0.1}, {"corrupt_rate": 1.0}],
    )
    def test_rejects_bad_rates(self, kwargs):
        with pytest.raises(NetworkError):
            ContactLoss(**kwargs)


class TestZeroLossIdentity:
    def test_zero_rate_loss_changes_nothing(self, workload):
        # ContactLoss(0, 0) draws nothing from the RNG, so the contact
        # process — and every delivery — is identical to loss=None.
        baseline = _inject_and_run(_sim(loss=None), workload)
        lossy = _inject_and_run(_sim(loss=ContactLoss()), workload)
        assert lossy.delivered_ids == baseline.delivered_ids
        assert lossy.transmissions == baseline.transmissions
        assert lossy.corrupt_ids == ()
        assert lossy.repaired == 0
        assert lossy.n_intact == lossy.n_delivered
        assert lossy.n_intact_groups == lossy.n_unique_groups


class TestLossyContacts:
    def test_drops_reduce_or_delay_delivery(self, workload):
        baseline = _inject_and_run(_sim(loss=None), workload)
        heavy = _inject_and_run(_sim(loss=ContactLoss(drop_rate=0.6)), workload)
        assert heavy.n_delivered <= baseline.n_delivered
        assert _sim_dropped(heavy) >= 0

    def test_dropped_transmissions_counted(self, workload):
        sim = _sim(loss=ContactLoss(drop_rate=0.5))
        _inject_and_run(sim, workload)
        assert sim.dropped_transmissions > 0
        assert sim.transmissions >= sim.dropped_transmissions

    def test_determinism_with_loss(self, workload):
        reports = [
            _inject_and_run(_sim(loss=ContactLoss(drop_rate=0.3,
                                                  corrupt_rate=0.2), seed=9),
                            workload)
            for _ in range(2)
        ]
        assert reports[0].delivered_ids == reports[1].delivered_ids
        assert reports[0].corrupt_ids == reports[1].corrupt_ids
        assert reports[0].repaired == reports[1].repaired


def _sim_dropped(report):
    return report.transmissions - report.n_delivered


class TestGatewayReconciliation:
    def test_corrupt_only_copies_flagged(self, workload):
        # Script: every forwarded copy is corrupted; injected originals
        # are intact, so an image is corrupt at the gateway only if no
        # node delivered its original.
        loss = PlannedContactLoss(script=("corrupt",) * 500)
        sim = _sim(loss=loss)
        report = _inject_and_run(sim, workload)
        for image_id in report.corrupt_ids:
            assert image_id in report.delivered_ids
        assert report.n_intact == report.n_delivered - len(report.corrupt_ids)

    def test_intact_copy_repairs_image(self, workload):
        # First transmission corrupts, everything later is clean: any
        # image whose corrupt copy reaches the gateway alongside a clean
        # epidemic copy counts as repaired, never as corrupt.
        loss = PlannedContactLoss(script=("corrupt",))
        sim = _sim(loss=loss)
        report = _inject_and_run(sim, workload)
        assert loss.consumed > 1
        # The single corrupt copy either was repaired by a clean copy or
        # is the only copy that arrived (then it is flagged corrupt).
        assert report.repaired + len(report.corrupt_ids) <= 1

    def test_intact_properties_consistent(self, workload):
        loss = ContactLoss(drop_rate=0.2, corrupt_rate=0.3)
        report = _inject_and_run(_sim(loss=loss, seed=11), workload)
        assert 0 <= report.n_intact <= report.n_delivered
        assert report.n_intact_groups <= report.n_unique_groups
        assert set(report.corrupt_ids) <= set(report.delivered_ids)


class TestCarriedImageIntact:
    def test_default_is_intact(self, workload):
        assert workload[0].intact is True

    def test_buffers_dedup_by_id_regardless_of_intact(self, workload):
        from dataclasses import replace

        from repro.dtn.node import DtnNode

        node = DtnNode(node_id="n", capacity=4)
        assert node.offer(workload[0])
        assert not node.offer(replace(workload[0], intact=False))
