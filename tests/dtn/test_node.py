"""Tests for DTN nodes and drop policies."""

import pytest

from repro.dtn.node import CareDropPolicy, CarriedImage, DtnNode, FifoDropPolicy
from repro.errors import SimulationError
from repro.features.orb import OrbExtractor
from repro.imaging.synth import SceneGenerator


@pytest.fixture(scope="module")
def carried():
    """Carried images: scenes 0..3 singly, plus a 2nd view of scene 0."""
    generator = SceneGenerator()
    extractor = OrbExtractor()
    out = {}
    for scene in range(4):
        image = generator.view(scene + 300, 0, image_id=f"dtn{scene}", group_id=f"g{scene}")
        out[f"dtn{scene}"] = CarriedImage(image=image, features=extractor.extract(image))
    dup = generator.view(300, 1, image_id="dtn0b", group_id="g0")
    out["dtn0b"] = CarriedImage(image=dup, features=extractor.extract(dup))
    return out


class TestDtnNode:
    def test_accepts_until_full(self, carried):
        node = DtnNode(node_id="n", capacity=2)
        assert node.offer(carried["dtn0"])
        assert node.offer(carried["dtn1"])
        assert len(node.buffer) == 2

    def test_duplicate_id_ignored(self, carried):
        node = DtnNode(node_id="n", capacity=2)
        node.offer(carried["dtn0"])
        assert not node.offer(carried["dtn0"])
        assert len(node.buffer) == 1

    def test_carries(self, carried):
        node = DtnNode(node_id="n", capacity=2)
        node.offer(carried["dtn0"])
        assert node.carries("dtn0")
        assert not node.carries("dtn1")

    def test_take_all_drains(self, carried):
        node = DtnNode(node_id="n", capacity=3)
        node.offer(carried["dtn0"])
        node.offer(carried["dtn1"])
        drained = node.take_all()
        assert len(drained) == 2
        assert node.buffer == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            DtnNode(node_id="n", capacity=0)


class TestFifoPolicy:
    def test_evicts_oldest(self, carried):
        node = DtnNode(node_id="n", capacity=2, policy=FifoDropPolicy())
        node.offer(carried["dtn0"])
        node.offer(carried["dtn1"])
        assert node.offer(carried["dtn2"])
        assert not node.carries("dtn0")
        assert node.carries("dtn2")
        assert node.drops == 1


class TestCarePolicy:
    def test_rejects_redundant_candidate(self, carried):
        """A second view of a carried scene adds no information — CARE
        refuses it instead of evicting unique content."""
        node = DtnNode(node_id="n", capacity=2, policy=CareDropPolicy())
        node.offer(carried["dtn0"])
        node.offer(carried["dtn1"])
        assert not node.offer(carried["dtn0b"])  # duplicates dtn0
        assert node.carries("dtn0") and node.carries("dtn1")
        assert node.rejections == 1

    def test_evicts_buffer_redundancy_for_fresh_content(self, carried):
        """With a redundant pair already in the buffer, new unique
        content displaces one of the pair."""
        node = DtnNode(node_id="n", capacity=2, policy=CareDropPolicy())
        node.offer(carried["dtn0"])
        node.offer(carried["dtn0b"])  # buffer: two views of scene 0
        assert node.offer(carried["dtn1"])
        assert node.carries("dtn1")
        # Exactly one view of scene 0 survives.
        views = [entry for entry in node.buffer if entry.image.group_id == "g0"]
        assert len(views) == 1

    def test_falls_back_to_fifo_without_redundancy(self, carried):
        node = DtnNode(node_id="n", capacity=2, policy=CareDropPolicy())
        node.offer(carried["dtn0"])
        node.offer(carried["dtn1"])
        assert node.offer(carried["dtn2"])  # all distinct: FIFO victim
        assert not node.carries("dtn0")

    def test_rejects_negative_floor(self):
        with pytest.raises(SimulationError):
            CareDropPolicy(similarity_floor=-0.1)
