"""Tests for the feature index."""

import pytest

from repro.errors import IndexError_
from repro.features.base import FeatureSet
from repro.index.index import FeatureIndex

import numpy as np


def _features(image_id, descriptors):
    n = len(descriptors)
    return FeatureSet(
        kind="orb",
        descriptors=np.asarray(descriptors, dtype=np.uint8),
        xs=np.zeros(n),
        ys=np.zeros(n),
        pixels_processed=100,
        image_id=image_id,
    )


class TestMutation:
    def test_add_and_contains(self, orb_features):
        index = FeatureIndex()
        index.add(orb_features)
        assert orb_features.image_id in index
        assert len(index) == 1

    def test_duplicate_id_rejected(self, orb_features):
        index = FeatureIndex()
        index.add(orb_features)
        with pytest.raises(IndexError_):
            index.add(orb_features)

    def test_missing_id_rejected(self, rng):
        index = FeatureIndex()
        with pytest.raises(IndexError_):
            index.add(_features("", rng.integers(0, 256, (5, 32))))

    def test_kind_mismatch_rejected(self, sift, scene_image):
        index = FeatureIndex(kind="orb")
        with pytest.raises(IndexError_):
            index.add(sift.extract(scene_image))

    def test_empty_feature_set_indexable(self):
        index = FeatureIndex()
        index.add(_features("empty", np.zeros((0, 32))))
        assert "empty" in index


class TestQuery:
    def test_empty_index(self, orb_features):
        result = FeatureIndex().query(orb_features)
        assert not result.found
        assert result.best_similarity == 0.0

    def test_finds_similar_image(
        self, orb_features, orb_features_alt_view, orb_features_other
    ):
        index = FeatureIndex()
        index.add(orb_features)
        index.add(orb_features_other)
        result = index.query(orb_features_alt_view)
        assert result.best_id == orb_features.image_id
        assert result.best_similarity > 0.1

    def test_unrelated_query_low_similarity(self, orb_features, orb_features_other):
        index = FeatureIndex()
        index.add(orb_features)
        result = index.query(orb_features_other)
        assert result.best_similarity < 0.05

    def test_exact_duplicate_scores_one(self, orb_features):
        index = FeatureIndex()
        index.add(orb_features)
        duplicate = FeatureSet(
            kind="orb",
            descriptors=orb_features.descriptors,
            xs=orb_features.xs,
            ys=orb_features.ys,
            pixels_processed=orb_features.pixels_processed,
            image_id="copy",
        )
        assert index.query(duplicate).best_similarity == pytest.approx(1.0)

    def test_query_top_ordering(
        self, orb, generator, orb_features, orb_features_alt_view
    ):
        index = FeatureIndex()
        index.add(orb_features)
        for seed in (101, 102, 103):
            index.add(orb.extract(generator.view(seed, 0, image_id=f"bg{seed}")))
        top = index.query_top(orb_features_alt_view, 3)
        assert top[0][0] == orb_features.image_id
        sims = [sim for _, sim in top]
        assert sims == sorted(sims, reverse=True)

    def test_query_top_rejects_bad_k(self, orb_features):
        with pytest.raises(IndexError_):
            FeatureIndex().query_top(orb_features, 0)

    def test_empty_query_features(self):
        index = FeatureIndex()
        index.add(_features("a", np.random.default_rng(0).integers(0, 256, (5, 32))))
        assert index.query(_features("q", np.zeros((0, 32)))).best_similarity == 0.0


class TestFloatKind:
    def test_sift_index_roundtrip(self, sift, scene_image, scene_image_alt_view, other_scene_image):
        index = FeatureIndex(kind="sift")
        index.add(sift.extract(scene_image))
        index.add(sift.extract(other_scene_image))
        result = index.query(sift.extract(scene_image_alt_view))
        assert result.best_id == scene_image.image_id
