"""Tests for the sharded feature index.

The load-bearing property is *exactness*: a sharded index must answer
every query byte-identically to a single :class:`FeatureIndex` holding
the same images, regardless of shard count or insertion order.  The
fleet differential suite (:mod:`tests.fleet`) builds on this.
"""

import itertools

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.features.base import FeatureSet
from repro.imaging.synth import SceneGenerator
from repro.index import FeatureIndex, ShardedFeatureIndex, shard_of


@pytest.fixture(scope="module")
def corpus(orb):
    """Twelve feature sets over four scenes (three views each)."""
    generator = SceneGenerator(height=72, width=96)
    feature_sets = []
    for scene, view in itertools.product(range(4), range(3)):
        image = generator.view(
            scene, view, image_id=f"s{scene}-v{view}", group_id=f"s{scene}"
        )
        feature_sets.append(orb.extract(image))
    return feature_sets


def _fill(index, feature_sets):
    for features in feature_sets:
        index.add(features)
    return index


class TestRouting:
    def test_shard_of_is_stable(self):
        # Pinned values: placement must survive process restarts and
        # PYTHONHASHSEED — a shuffled placement would silently break
        # persisted-run comparisons.
        assert shard_of("s0-v0", 4) == shard_of("s0-v0", 4)
        assert [shard_of(f"img-{i}", 4) for i in range(6)] == [
            shard_of(f"img-{i}", 4) for i in range(6)
        ]

    def test_all_shards_reachable(self):
        hits = {shard_of(f"img-{i}", 4) for i in range(64)}
        assert hits == {0, 1, 2, 3}

    def test_bad_shard_count_rejected(self):
        with pytest.raises(IndexError_):
            ShardedFeatureIndex(n_shards=0)


class TestMutation:
    def test_add_contains_len(self, corpus):
        index = _fill(ShardedFeatureIndex(n_shards=4), corpus)
        assert len(index) == len(corpus)
        assert sum(index.shard_sizes()) == len(corpus)
        for features in corpus:
            assert features.image_id in index
            assert index.features_of(features.image_id) is features
        assert "missing" not in index

    def test_duplicate_id_rejected(self, corpus):
        index = _fill(ShardedFeatureIndex(n_shards=4), corpus[:1])
        with pytest.raises(IndexError_):
            index.add(corpus[0])

    def test_missing_id_rejected(self):
        features = FeatureSet(
            kind="orb",
            descriptors=np.zeros((0, 32), dtype=np.uint8),
            xs=np.zeros(0),
            ys=np.zeros(0),
            pixels_processed=1,
            image_id="",
        )
        with pytest.raises(IndexError_):
            ShardedFeatureIndex().add(features)

    def test_image_ids_sorted(self, corpus):
        index = _fill(ShardedFeatureIndex(n_shards=4), corpus)
        ids = index.image_ids()
        assert ids == sorted(f.image_id for f in corpus)


class TestEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_query_matches_single_index(self, corpus, n_shards):
        single = _fill(FeatureIndex(), corpus[:9])
        sharded = _fill(ShardedFeatureIndex(n_shards=n_shards), corpus[:9])
        for query in corpus[9:]:
            expected = single.query(query)
            actual = sharded.query(query)
            assert actual == expected
            assert sharded.query_top(query, 4) == single.query_top(query, 4)

    def test_query_batch_matches_sequential_queries(self, corpus):
        sharded = _fill(ShardedFeatureIndex(n_shards=4), corpus[:9])
        queries = corpus[9:]
        assert sharded.query_batch(queries) == [sharded.query(q) for q in queries]

    def test_empty_index_and_empty_query(self, corpus):
        sharded = ShardedFeatureIndex(n_shards=4)
        assert not sharded.query(corpus[0]).found
        _fill(sharded, corpus[:3])
        empty = FeatureSet(
            kind="orb",
            descriptors=np.zeros((0, 32), dtype=np.uint8),
            xs=np.zeros(0),
            ys=np.zeros(0),
            pixels_processed=1,
            image_id="empty-query",
        )
        assert sharded.query(empty).best_similarity == 0.0


class TestInsertionOrderDeterminism:
    """Regression: answers must not depend on arrival order.

    The original shortlist ranking tie-broke on dict insertion order, so
    two indexes holding the same images could answer differently — fatal
    for the sharded/sequential differential contract.
    """

    @pytest.mark.parametrize("index_factory", [
        FeatureIndex,
        lambda: ShardedFeatureIndex(n_shards=4),
    ])
    def test_permuted_insertion_same_answers(self, corpus, index_factory):
        stored, queries = corpus[:9], corpus[9:]
        rng = np.random.default_rng(42)
        baseline = _fill(index_factory(), stored)
        for _ in range(4):
            order = rng.permutation(len(stored))
            permuted = _fill(index_factory(), [stored[i] for i in order])
            for query in queries:
                assert permuted.query(query) == baseline.query(query)
                assert permuted.query_top(query, 5) == baseline.query_top(query, 5)

    def test_vote_ties_break_on_image_id(self, orb_features):
        # Exact duplicates under different ids tie on votes *and*
        # similarity; the smallest id must win deterministically.
        def clone(image_id):
            return FeatureSet(
                kind="orb",
                descriptors=orb_features.descriptors,
                xs=orb_features.xs,
                ys=orb_features.ys,
                pixels_processed=orb_features.pixels_processed,
                image_id=image_id,
            )

        for order in (["dup-b", "dup-a"], ["dup-a", "dup-b"]):
            index = _fill(FeatureIndex(), [clone(image_id) for image_id in order])
            top = index.query_top(clone("query"), 2)
            assert [image_id for image_id, _ in top] == ["dup-a", "dup-b"]
