"""Tests for the vocabulary-tree / bag-of-words index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index.vocab import BagOfWordsIndex, VocabularyTree


@pytest.fixture(scope="module")
def trained(generator, orb):
    """A trained tree + per-image features (8 scenes x 2 views)."""
    features = {
        (scene, view): orb.extract(
            generator.view(scene, view, image_id=f"v{scene}-{view}")
        )
        for scene in range(8)
        for view in range(2)
    }
    training = np.concatenate([f.descriptors for f in features.values()])
    tree = VocabularyTree(branching=6, depth=2)
    tree.train(training)
    return tree, features


class TestTree:
    def test_rejects_bad_params(self):
        with pytest.raises(IndexError_):
            VocabularyTree(branching=1)
        with pytest.raises(IndexError_):
            VocabularyTree(depth=0)

    def test_untrained_rejects_queries(self):
        tree = VocabularyTree()
        with pytest.raises(IndexError_):
            tree.words(np.zeros((1, 32), dtype=np.uint8))

    def test_rejects_tiny_training_set(self):
        tree = VocabularyTree(branching=8)
        with pytest.raises(IndexError_):
            tree.train(np.zeros((3, 32), dtype=np.uint8))

    def test_words_deterministic(self, trained):
        tree, features = trained
        desc = features[(0, 0)].descriptors
        assert np.array_equal(tree.words(desc), tree.words(desc))

    def test_words_are_leaf_ids(self, trained):
        tree, features = trained
        words = tree.words(features[(0, 0)].descriptors)
        # Leaves are nodes with no children.
        for word in set(words.tolist()):
            assert not tree._children[word]

    def test_identical_descriptors_same_word(self, trained):
        tree, features = trained
        desc = features[(0, 0)].descriptors[:1]
        both = np.vstack([desc, desc])
        words = tree.words(both)
        assert words[0] == words[1]

    def test_empty_query(self, trained):
        tree, _ = trained
        assert tree.words(np.zeros((0, 32), dtype=np.uint8)).shape == (0,)


class TestBagOfWordsIndex:
    @pytest.fixture()
    def index(self, trained):
        tree, features = trained
        index = BagOfWordsIndex(tree=tree)
        for scene in range(8):
            index.add(features[(scene, 0)])
        return index

    def test_len(self, index):
        assert len(index) == 8

    def test_duplicate_rejected(self, index, trained):
        _, features = trained
        with pytest.raises(IndexError_):
            index.add(features[(0, 0)])

    def test_retrieves_same_scene(self, index, trained):
        _, features = trained
        hits = 0
        for scene in range(8):
            top = index.query_top(features[(scene, 1)], 1)
            if top and top[0][0] == f"v{scene}-0":
                hits += 1
        # The BoW retrieval finds the right scene almost always.
        assert hits >= 6

    def test_scores_sorted(self, index, trained):
        _, features = trained
        results = index.query_top(features[(0, 1)], 5)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_rejects_bad_k(self, index, trained):
        _, features = trained
        with pytest.raises(IndexError_):
            index.query_top(features[(0, 1)], 0)

    def test_empty_index_returns_nothing(self, trained):
        tree, features = trained
        assert BagOfWordsIndex(tree=tree).query_top(features[(0, 1)], 3) == []

    def test_requires_image_id(self, trained):
        tree, features = trained
        index = BagOfWordsIndex(tree=tree)
        anonymous = features[(0, 0)]
        from repro.features.base import FeatureSet

        stripped = FeatureSet(
            kind="orb",
            descriptors=anonymous.descriptors,
            xs=anonymous.xs,
            ys=anonymous.ys,
            pixels_processed=0,
            image_id="",
        )
        with pytest.raises(IndexError_):
            index.add(stripped)
