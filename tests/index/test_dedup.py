"""Tests for byte-level deduplication (the related-work foil)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.dedup import (
    MAX_CHUNK,
    MIN_CHUNK,
    DedupStore,
    chunk_fingerprint,
    content_defined_chunks,
    image_payload,
)


class TestChunking:
    def test_empty_input(self):
        assert content_defined_chunks(b"") == []

    def test_small_input_single_chunk(self):
        data = b"x" * 100
        assert content_defined_chunks(data) == [data]

    def test_chunks_reassemble(self, rng):
        data = rng.integers(0, 256, 50_000).astype(np.uint8).tobytes()
        chunks = content_defined_chunks(data)
        assert b"".join(chunks) == data

    def test_chunk_size_bounds(self, rng):
        data = rng.integers(0, 256, 100_000).astype(np.uint8).tobytes()
        chunks = content_defined_chunks(data)
        for chunk in chunks[:-1]:
            assert MIN_CHUNK <= len(chunk) <= MAX_CHUNK
        assert len(chunks[-1]) <= MAX_CHUNK

    def test_deterministic(self, rng):
        data = rng.integers(0, 256, 20_000).astype(np.uint8).tobytes()
        assert content_defined_chunks(data) == content_defined_chunks(data)

    def test_constant_data_forced_cuts(self):
        # No content boundaries at all: MAX_CHUNK forcing applies.
        data = b"\x00" * (3 * MAX_CHUNK + 100)
        chunks = content_defined_chunks(data)
        assert b"".join(chunks) == data
        assert all(len(chunk) <= MAX_CHUNK for chunk in chunks)

    def test_shift_resynchronises(self, rng):
        """The CDC property: inserting bytes at the front only changes
        chunks near the edit, unlike fixed-size chunking."""
        data = rng.integers(0, 256, 60_000).astype(np.uint8).tobytes()
        shifted = b"PREFIX" + data
        original = {chunk_fingerprint(c) for c in content_defined_chunks(data)}
        moved = {chunk_fingerprint(c) for c in content_defined_chunks(shifted)}
        shared = len(original & moved)
        assert shared >= 0.6 * len(original)

    @given(st.binary(min_size=0, max_size=5000))
    @settings(max_examples=30)
    def test_reassembly_property(self, data):
        assert b"".join(content_defined_chunks(data)) == data


class TestDedupStore:
    def test_identical_payload_fully_deduped(self, rng):
        data = rng.integers(0, 256, 30_000).astype(np.uint8).tobytes()
        store = DedupStore()
        store.add(data)
        new, duplicate = store.add(data)
        assert new == 0
        assert duplicate == len(data)

    def test_ratio_accounting(self, rng):
        data = rng.integers(0, 256, 30_000).astype(np.uint8).tobytes()
        store = DedupStore()
        store.add(data)
        store.add(data)
        assert store.dedup_ratio == pytest.approx(0.5)

    def test_empty_store_ratio_zero(self):
        assert DedupStore().dedup_ratio == 0.0

    def test_disjoint_payloads_nothing_deduped(self, rng):
        store = DedupStore()
        a = rng.integers(0, 256, 20_000).astype(np.uint8).tobytes()
        b = rng.integers(0, 256, 20_000).astype(np.uint8).tobytes()
        store.add(a)
        new, duplicate = store.add(b)
        assert duplicate == 0


class TestPaperClaim:
    def test_similar_images_do_not_dedup(self, generator):
        """Section V: byte-level dedup cannot catch content-level
        similarity — two views of the same scene share ~no chunks."""
        store = DedupStore()
        store.add(image_payload(generator.view(60, 0)))
        new, duplicate = store.add(image_payload(generator.view(60, 1)))
        assert duplicate < 0.05 * (new + duplicate)

    def test_identical_image_fully_dedups(self, generator):
        store = DedupStore()
        payload = image_payload(generator.view(60, 0))
        store.add(payload)
        new, duplicate = store.add(payload)
        assert new == 0 and duplicate == len(payload)

    def test_rejects_empty_image(self, generator):
        image = generator.view(1, 0)
        # image_payload guards on emptiness via pixels.
        assert image.pixels > 0  # the guard is unreachable for real images
