"""Tests for the Hamming LSH tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import IndexError_
from repro.index.lsh import (
    HammingLSH,
    float_sketch_planes,
    sketch_float_descriptors,
)


def _random_descriptors(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (n, 32)).astype(np.uint8)


class TestConstruction:
    def test_rejects_bad_bits(self):
        with pytest.raises(IndexError_):
            HammingLSH(n_bits=4)

    def test_rejects_bad_tables(self):
        with pytest.raises(IndexError_):
            HammingLSH(n_bits=256, n_tables=0)

    def test_rejects_oversized_key(self):
        with pytest.raises(IndexError_):
            HammingLSH(n_bits=256, bits_per_key=63)


class TestVoting:
    def test_exact_duplicates_get_full_votes(self):
        lsh = HammingLSH(n_bits=256)
        desc = _random_descriptors(10)
        lsh.add(desc, ref=1)
        votes = lsh.votes(desc)
        # Every descriptor hits its own buckets in every table.
        assert votes[1] == 10 * lsh.n_tables

    def test_unrelated_descriptors_rarely_vote(self):
        lsh = HammingLSH(n_bits=256)
        lsh.add(_random_descriptors(50, seed=1), ref=1)
        votes = lsh.votes(_random_descriptors(50, seed=2))
        assert votes.get(1, 0) <= 4

    def test_near_duplicates_vote_substantially(self):
        rng = np.random.default_rng(3)
        base = _random_descriptors(30, seed=3)
        bits = np.unpackbits(base, axis=1)
        flip = rng.random(bits.shape) < 0.04  # ~10 of 256 bits
        noisy = np.packbits(bits ^ flip, axis=1)
        lsh = HammingLSH(n_bits=256)
        lsh.add(base, ref=7)
        votes = lsh.votes(noisy)
        assert votes.get(7, 0) > 20

    def test_votes_split_across_refs(self):
        lsh = HammingLSH(n_bits=256)
        a = _random_descriptors(10, seed=1)
        b = _random_descriptors(10, seed=2)
        lsh.add(a, ref=1)
        lsh.add(b, ref=2)
        votes = lsh.votes(a)
        assert votes[1] > votes.get(2, 0)

    def test_empty_query(self):
        lsh = HammingLSH(n_bits=256)
        lsh.add(_random_descriptors(5), ref=1)
        assert lsh.votes(np.zeros((0, 32), dtype=np.uint8)) == {}

    def test_rejects_wrong_width(self):
        lsh = HammingLSH(n_bits=256)
        with pytest.raises(IndexError_):
            lsh.add(np.zeros((2, 16), dtype=np.uint8), ref=1)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_votes_bounded_by_tables_times_descriptors(self, seed):
        lsh = HammingLSH(n_bits=256)
        desc = _random_descriptors(8, seed=seed)
        lsh.add(desc, ref=1)
        votes = lsh.votes(desc)
        assert votes[1] <= 8 * lsh.n_tables


class TestBucketDedupe:
    """Regression tests for the insert-time bucket dedupe.

    Pre-kernel buckets appended one entry per (descriptor, key) hit, so
    an image with repeated descriptors grew hot buckets without bound;
    votes already deduplicated with ``set(bucket)``, so dedupe at insert
    must leave every vote count unchanged.
    """

    def test_duplicate_descriptor_rows_keep_buckets_at_one(self):
        one = _random_descriptors(1, seed=5)
        repeated = np.repeat(one, 100, axis=0)
        lsh = HammingLSH(n_bits=256)
        lsh.add(repeated, ref=0)
        lengths = lsh._store.bucket_lengths()
        assert lengths == [1] * lsh.n_tables

    def test_re_adding_same_ref_does_not_grow_buckets(self):
        desc = _random_descriptors(20, seed=6)
        lsh = HammingLSH(n_bits=256)
        lsh.add(desc, ref=3)
        before = sorted(lsh._store.bucket_lengths())
        lsh.add(desc, ref=3)
        assert sorted(lsh._store.bucket_lengths()) == before

    def test_vote_counts_identical_to_pre_dedupe_buckets(self):
        from tests.kernels.reference import ReferenceHammingLSH

        rng = np.random.default_rng(8)
        lsh = HammingLSH(n_bits=256)
        legacy = ReferenceHammingLSH(HammingLSH(n_bits=256))
        for ref in range(4):
            base = _random_descriptors(12, seed=ref)
            # Repeat rows so legacy buckets actually accumulate
            # duplicates — the case the fix changes storage for.
            packed = np.concatenate([base, base[:4]], axis=0)
            lsh.add(packed, ref=ref)
            legacy.add(packed, ref=ref)
        assert max(legacy.bucket_lengths()) > 1  # legacy really duplicated
        assert max(lsh._store.bucket_lengths()) == 1  # fixed store did not
        probe = _random_descriptors(25, seed=99)
        assert lsh.votes(probe) == legacy.votes(probe)
        for ref in range(4):
            stored = _random_descriptors(12, seed=ref)
            assert lsh.votes(stored) == legacy.votes(stored)


class TestFloatSketch:
    def test_shape(self):
        planes = float_sketch_planes(36, 128)
        rng = np.random.default_rng(0)
        packed = sketch_float_descriptors(rng.normal(size=(5, 36)), planes)
        assert packed.shape == (5, 16)

    def test_deterministic(self):
        planes = float_sketch_planes(36, 128)
        desc = np.random.default_rng(0).normal(size=(3, 36))
        assert np.array_equal(
            sketch_float_descriptors(desc, planes),
            sketch_float_descriptors(desc, planes),
        )

    def test_similar_vectors_similar_sketches(self):
        planes = float_sketch_planes(36, 128)
        rng = np.random.default_rng(1)
        base = rng.normal(size=(1, 36))
        near = base + rng.normal(scale=0.05, size=(1, 36))
        far = rng.normal(size=(1, 36))
        base_bits = np.unpackbits(sketch_float_descriptors(base, planes))
        near_bits = np.unpackbits(sketch_float_descriptors(near, planes))
        far_bits = np.unpackbits(sketch_float_descriptors(far, planes))
        assert (base_bits != near_bits).sum() < (base_bits != far_bits).sum()

    def test_rejects_dim_mismatch(self):
        planes = float_sketch_planes(36, 128)
        with pytest.raises(IndexError_):
            sketch_float_descriptors(np.zeros((2, 10)), planes)

    def test_rejects_bad_dim(self):
        with pytest.raises(IndexError_):
            float_sketch_planes(0)
