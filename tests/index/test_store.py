"""Tests for the server-side image store."""

import pytest

from repro.errors import IndexError_
from repro.index.store import ImageStore


class TestStore:
    def test_add_and_get(self, scene_image):
        store = ImageStore()
        record = store.add(scene_image)
        assert store.get(scene_image.image_id) == record
        assert record.group_id == scene_image.group_id

    def test_default_bytes_is_nominal(self, scene_image):
        record = ImageStore().add(scene_image)
        assert record.received_bytes == scene_image.nominal_bytes

    def test_explicit_bytes(self, scene_image):
        record = ImageStore().add(scene_image, received_bytes=123)
        assert record.received_bytes == 123

    def test_duplicate_rejected(self, scene_image):
        store = ImageStore()
        store.add(scene_image)
        with pytest.raises(IndexError_):
            store.add(scene_image)

    def test_missing_id_rejected(self, generator):
        image = generator.view(1, 0, image_id="x").with_bitmap(
            generator.view(1, 0).bitmap, image_id=""
        )
        with pytest.raises(IndexError_):
            ImageStore().add(image)

    def test_get_unknown_rejected(self):
        with pytest.raises(IndexError_):
            ImageStore().get("nope")

    def test_records_in_arrival_order(self, generator):
        store = ImageStore()
        for seed in (1, 2, 3):
            store.add(generator.view(seed, 0, image_id=f"i{seed}"))
        assert [record.image_id for record in store.records()] == ["i1", "i2", "i3"]

    def test_total_bytes(self, generator):
        store = ImageStore()
        store.add(generator.view(1, 0, image_id="a"), received_bytes=10)
        store.add(generator.view(2, 0, image_id="b"), received_bytes=20)
        assert store.total_bytes == 30

    def test_len_and_contains(self, scene_image):
        store = ImageStore()
        assert len(store) == 0
        store.add(scene_image)
        assert len(store) == 1
        assert scene_image.image_id in store

    def test_geotag_preserved(self, generator):
        image = generator.view(9, 0, image_id="geo")
        tagged = image.with_bitmap(image.bitmap, geotag=(2.32, 48.86))
        record = ImageStore().add(tagged)
        assert record.geotag == (2.32, 48.86)
