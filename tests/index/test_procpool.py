"""Tests for the process-parallel sharded index.

Same exactness bar as :mod:`tests.index.test_sharded` — answers must be
byte-identical to a single :class:`FeatureIndex` over the same images —
plus the properties only a process pool has: durable segments, worker
crash detection, rebuild-from-segments verified by content fingerprint,
and zero-copy reads out of the shared arenas.

Workers are spawned with the ``fork`` start method here: these tests
create many short-lived pools and fork skips the per-worker interpreter
boot that the production ``spawn`` default pays for safety.
"""

import itertools

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.features.base import FeatureSet
from repro.imaging.synth import SceneGenerator
from repro.index import FeatureIndex, ProcessShardedIndex, WorkerCrashedError


@pytest.fixture(scope="module")
def corpus(orb):
    """Twelve feature sets over four scenes (three views each)."""
    generator = SceneGenerator(height=72, width=96)
    feature_sets = []
    for scene, view in itertools.product(range(4), range(3)):
        image = generator.view(
            scene, view, image_id=f"s{scene}-v{view}", group_id=f"s{scene}"
        )
        feature_sets.append(orb.extract(image))
    return feature_sets


def _fill(index, feature_sets):
    for features in feature_sets:
        index.add(features)
    return index


def _pool(**kwargs):
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("mp_context", "fork")
    return ProcessShardedIndex(**kwargs)


@pytest.fixture(scope="module")
def filled_pool(corpus):
    """One pool over the first nine corpus images, shared read-only."""
    with _pool() as index:
        _fill(index, corpus[:9])
        yield index


@pytest.fixture(scope="module")
def reference(corpus):
    return _fill(FeatureIndex(), corpus[:9])


class TestEquivalence:
    def test_query_matches_single_index(self, filled_pool, reference, corpus):
        for query in corpus[9:]:
            assert filled_pool.query(query) == reference.query(query)
            assert filled_pool.query_top(query, 4) == reference.query_top(query, 4)

    def test_query_batch_matches_sequential_queries(self, filled_pool, corpus):
        queries = corpus[9:]
        assert filled_pool.query_batch(queries) == [
            filled_pool.query(q) for q in queries
        ]

    def test_empty_query_and_empty_index(self, corpus):
        empty = FeatureSet(
            kind="orb",
            descriptors=np.zeros((0, 32), dtype=np.uint8),
            xs=np.zeros(0),
            ys=np.zeros(0),
            pixels_processed=1,
            image_id="empty-query",
        )
        with _pool(n_shards=2) as index:
            assert not index.query(corpus[0]).found
            _fill(index, corpus[:3])
            assert index.query(empty) == _fill(FeatureIndex(), corpus[:3]).query(empty)

    def test_features_round_trip_through_the_arena(self, filled_pool, corpus):
        for features in corpus[:9]:
            stored = filled_pool.features_of(features.image_id)
            assert stored.image_id == features.image_id
            assert stored.kind == features.kind
            np.testing.assert_array_equal(stored.descriptors, features.descriptors)
            # Wire format carries float32 coordinates (see serialize.py).
            np.testing.assert_array_equal(
                stored.xs, features.xs.astype(np.float32)
            )
            np.testing.assert_array_equal(
                stored.ys, features.ys.astype(np.float32)
            )


class TestMutation:
    def test_add_contains_len_shards(self, filled_pool, corpus):
        assert len(filled_pool) == 9
        assert sum(filled_pool.shard_sizes()) == 9
        for features in corpus[:9]:
            assert features.image_id in filled_pool
        assert "missing" not in filled_pool
        assert filled_pool.image_ids() == sorted(
            f.image_id for f in corpus[:9]
        )

    def test_duplicate_id_rejected(self, filled_pool, corpus):
        with pytest.raises(IndexError_, match="already indexed"):
            filled_pool.add(corpus[0])

    def test_missing_id_rejected(self, filled_pool):
        features = FeatureSet(
            kind="orb",
            descriptors=np.zeros((0, 32), dtype=np.uint8),
            xs=np.zeros(0),
            ys=np.zeros(0),
            pixels_processed=1,
            image_id="",
        )
        with pytest.raises(IndexError_):
            filled_pool.add(features)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(IndexError_):
            ProcessShardedIndex(n_shards=0)


class TestWorkerUnit:
    """Drive one ``_ShardWorker`` in-process (no pipes, no fork)."""

    def _config(self, tmp_path):
        from repro.index.procpool import _WorkerConfig

        return _WorkerConfig(
            shard_no=0,
            kind="orb",
            verify_top_k=5,
            n_tables=8,
            bits_per_key=16,
            seed=7,
            segment_dir=str(tmp_path / "worker"),
            roll_bytes=1 << 14,
        )

    def test_handle_ops_match_a_plain_index(self, corpus, tmp_path):
        from repro.features.serialize import serialize_features
        from repro.index import rank_votes
        from repro.index.procpool import _ShardWorker
        from repro.kernels.voting import group_query_keys

        reference = _fill(FeatureIndex(), corpus[:6])
        worker = _ShardWorker(self._config(tmp_path))
        payloads = [bytes(serialize_features(f)) for f in corpus[:6]]
        reply = worker.handle(("add", payloads))
        assert [image_id for image_id, _ in reply["added"]] == [
            f.image_id for f in corpus[:6]
        ]
        assert reply["stats"]["n_entries"] == 6

        query = corpus[10]
        grouped = group_query_keys(
            reference.hash_keys(reference.packed_descriptors(query))
        )
        votes = worker.handle(("vote", [grouped]))[0]
        assert votes  # perturbed views of indexed scenes collide
        shortlist = rank_votes(votes, 5)
        scored = worker.handle(
            ("verify", [(bytes(serialize_features(query)), shortlist)])
        )[0]
        by_id = dict(scored)
        for candidate_id in shortlist:
            expected = reference.query_top(query, len(reference))
            assert by_id[candidate_id] == dict(expected)[candidate_id]

        worker.handle(("seal",))
        fingerprint_before = worker.handle(("fingerprint",))
        worker.handle(("compact",))
        assert worker.handle(("fingerprint",)) == fingerprint_before
        worker.close()

    def test_rebuild_matches_clean_content_fingerprint(self, corpus, tmp_path):
        from repro.features.serialize import serialize_features
        from repro.index.procpool import _ShardWorker

        config = self._config(tmp_path)
        first = _ShardWorker(config)
        first.handle(
            ("add", [bytes(serialize_features(f)) for f in corpus[:6]])
        )
        clean = first.content_fingerprint()
        first.close()
        rebuilt = _ShardWorker(config)
        assert [image_id for image_id, _ in rebuilt.recovered] == [
            f.image_id for f in corpus[:6]
        ]
        assert rebuilt.content_fingerprint() == clean
        rebuilt.close()


class TestCrashRecovery:
    def test_kill_rebuild_verify(self, corpus, tmp_path):
        # Kill a worker mid-run: queries fail loudly, recover_workers()
        # replays its segments, and the rebuilt pool is *provably* the
        # same index — content fingerprints match a clean build and
        # answers still equal the single-index reference.
        reference = _fill(FeatureIndex(), corpus[:9])
        with _pool(segment_dir=tmp_path / "segs") as index:
            _fill(index, corpus[:9])
            before = index.fingerprints()
            victim = index._handles[1]
            victim.process.terminate()
            victim.process.join(timeout=10)
            with pytest.raises(WorkerCrashedError):
                index.query_batch(corpus[9:])
            assert index.recover_workers() == [1]
            assert index.fingerprints() == before
            assert len(index) == 9
            for query in corpus[9:]:
                assert index.query(query) == reference.query(query)

    def test_cold_restart_from_segments(self, corpus, tmp_path):
        with _pool(segment_dir=tmp_path / "segs") as index:
            _fill(index, corpus[:9])
            expected = index.fingerprints()
            ids = index.image_ids()
        with _pool(segment_dir=tmp_path / "segs") as reborn:
            assert reborn.image_ids() == ids
            assert reborn.fingerprints() == expected
            reference = _fill(FeatureIndex(), corpus[:9])
            for query in corpus[9:]:
                assert reborn.query(query) == reference.query(query)

    def test_seal_and_compact_keep_fingerprints(self, corpus, tmp_path):
        with _pool(segment_dir=tmp_path / "segs", roll_bytes=1 << 14) as index:
            _fill(index, corpus[:9])
            before = index.fingerprints()
            index.seal()
            index.compact()
            assert index.fingerprints() == before

    def test_survivor_adds_absorbed_when_batch_crashes(self, corpus, tmp_path):
        # An add round that loses one worker must still register the
        # surviving workers' adds with the coordinator: those shards
        # indexed (and journaled) their part of the batch, and dropping
        # the replies would orphan the ids — a later vote naming one
        # would KeyError during verification.
        import dataclasses

        from repro.index.sharded import shard_of

        def minted(features, shard_no, tag):
            for attempt in itertools.count():
                image_id = f"{tag}-{attempt}"
                if shard_of(image_id, 2) == shard_no:
                    return dataclasses.replace(features, image_id=image_id)

        with _pool(n_shards=2, segment_dir=tmp_path / "segs") as index:
            _fill(index, corpus[:8])
            victim_no = 0
            doomed = minted(corpus[8], victim_no, "doomed")
            survivor = minted(corpus[9], 1 - victim_no, "survivor")
            victim = index._handles[victim_no]
            victim.process.terminate()
            victim.process.join(timeout=10)
            with pytest.raises(WorkerCrashedError):
                index.add_batch([doomed, survivor])
            assert survivor.image_id in index
            assert doomed.image_id not in index  # never reached its worker
            assert index.recover_workers() == [victim_no]
            reference = _fill(FeatureIndex(), corpus[:8])
            reference.add(survivor)
            assert len(index) == len(reference)
            for query in corpus[10:] + [survivor]:
                assert index.query(query) == reference.query(query)

    def test_in_memory_pool_restarts_empty(self, corpus):
        # Without a segment_dir a killed shard is rebuilt empty — the
        # coordinator must still converge instead of wedging.
        with _pool(n_shards=2) as index:
            _fill(index, corpus[:4])
            lost_shard = index.shard_of(corpus[0].image_id)
            index._handles[lost_shard].process.terminate()
            index._handles[lost_shard].process.join(timeout=10)
            rebuilt = index.recover_workers()
            assert rebuilt == [lost_shard]
            assert corpus[0].image_id not in index
            assert len(index) == sum(index.shard_sizes())
