"""Tests for the append-only index segment store.

The load-bearing properties: every acknowledged append survives a
restart (recover returns the payloads in insertion order), the
fingerprint chain is invariant under seal/roll/compact, a torn final
segment recovers to its valid prefix, and interior corruption is loud.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.index.segments import (
    _HEADER,
    _RECORD,
    FingerprintChain,
    Segment,
    SegmentWriter,
    ShardSegmentStore,
)


def _store(directory, **kwargs):
    kwargs.setdefault("kind", "orb")
    return ShardSegmentStore(directory, **kwargs)


def _fill(store, payloads):
    for payload in payloads:
        store.append(payload)
    return store


PAYLOADS = [b"alpha", b"bravo-bravo", b"c", b"", b"delta" * 100]


class TestRoundTrip:
    def test_recover_returns_payloads_in_order(self, tmp_path):
        writer = _fill(_store(tmp_path), PAYLOADS)
        writer.close()
        reader = _store(tmp_path)
        assert reader.recover() == PAYLOADS
        assert reader.n_records == len(PAYLOADS)
        assert reader.fingerprint() == writer.fingerprint()

    def test_recover_includes_unsealed_tail(self, tmp_path):
        # A crash (no close/seal) must still expose every flushed
        # append: the tail segment has no footer but a valid prefix.
        writer = _fill(_store(tmp_path), PAYLOADS)
        writer.seal_active()
        writer.append(b"tail-1")
        writer.append(b"tail-2")
        del writer  # no close: the active segment stays unsealed
        reader = _store(tmp_path)
        assert reader.recover() == PAYLOADS + [b"tail-1", b"tail-2"]
        assert reader.recovered_tail_records == 2

    def test_rolls_active_segment_at_roll_bytes(self, tmp_path):
        store = _fill(_store(tmp_path, roll_bytes=64), [b"x" * 40] * 4)
        assert store.stats()["n_sealed_segments"] >= 2
        store.close()
        reader = _store(tmp_path, roll_bytes=64)
        assert reader.recover() == [b"x" * 40] * 4

    def test_appends_continue_the_chain_after_recovery(self, tmp_path):
        # fingerprint(clean build of A+B) == fingerprint(build A,
        # recover, append B) — the recovery invariant.
        first, second = PAYLOADS[:3], PAYLOADS[3:]
        interrupted = _fill(_store(tmp_path), first)
        interrupted.close()
        resumed = _store(tmp_path)
        resumed.recover()
        _fill(resumed, second)
        with tempfile.TemporaryDirectory() as clean_dir:
            clean = _fill(_store(Path(clean_dir)), first + second)
            assert resumed.fingerprint() == clean.fingerprint()

    @given(
        payloads=st.lists(st.binary(max_size=200), max_size=20),
        roll_bytes=st.integers(32, 4096),
        compact_after=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, payloads, roll_bytes, compact_after):
        # For any payload sequence and roll schedule: recover() is the
        # identity on content, and the chain matches a plain
        # FingerprintChain over the same bytes.
        expected_chain = FingerprintChain()
        for payload in payloads:
            expected_chain.update(payload)
        with tempfile.TemporaryDirectory() as directory:
            writer = _fill(_store(Path(directory), roll_bytes=roll_bytes), payloads)
            if compact_after:
                writer.compact()
            writer.close()
            assert writer.fingerprint() == expected_chain.hex()
            reader = _store(Path(directory), roll_bytes=roll_bytes)
            assert reader.recover() == payloads
            assert reader.fingerprint() == expected_chain.hex()


class TestTornTail:
    def _truncate(self, tmp_path, chop):
        path = max(tmp_path.glob("seg-*.bseg"))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - chop])
        return path

    def test_torn_final_record_is_discarded(self, tmp_path):
        writer = _fill(_store(tmp_path), PAYLOADS)
        del writer  # unsealed tail
        self._truncate(tmp_path, 3)  # chop into the last payload
        reader = _store(tmp_path)
        recovered = reader.recover()
        assert recovered == PAYLOADS[:-1]
        assert reader.recovered_tail_records == len(PAYLOADS) - 1

    def test_recovery_reseals_the_tail_in_place(self, tmp_path):
        # Recovery rewrites the torn tail as a sealed segment, so a
        # second recovery (crash during the first) sees only sealed
        # files and the same record sequence.
        writer = _fill(_store(tmp_path), PAYLOADS)
        del writer
        self._truncate(tmp_path, 1)
        first = _store(tmp_path)
        recovered = first.recover()
        for path in tmp_path.glob("seg-*.bseg"):
            with Segment(path, final=True) as segment:
                assert segment.info.sealed
        second = _store(tmp_path)
        assert second.recover() == recovered
        assert second.fingerprint() == first.fingerprint()

    def test_stale_tmp_files_are_swept(self, tmp_path):
        writer = _fill(_store(tmp_path), PAYLOADS)
        writer.close()
        stale = tmp_path / "seg-99999999.bseg.tmp"
        stale.write_bytes(b"half-written rewrite")
        reader = _store(tmp_path)
        assert reader.recover() == PAYLOADS
        assert not stale.exists()


class TestCorruption:
    def test_interior_corruption_is_fatal(self, tmp_path):
        # A corrupt *sealed* segment means acknowledged data is gone —
        # recovery must refuse, not silently skip.
        writer = _fill(_store(tmp_path, roll_bytes=32), [b"y" * 40] * 3)
        writer.close()
        first = min(tmp_path.glob("seg-*.bseg"))
        data = bytearray(first.read_bytes())
        data[-10] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(IndexError_):
            _store(tmp_path, roll_bytes=32).recover()

    def test_missing_segment_breaks_the_chain(self, tmp_path):
        writer = _fill(_store(tmp_path, roll_bytes=32), [b"z" * 40] * 3)
        writer.close()
        min(tmp_path.glob("seg-*.bseg")).unlink()
        with pytest.raises(IndexError_, match="base_records"):
            _store(tmp_path, roll_bytes=32).recover()

    def test_sealed_final_segment_bitrot_is_fatal(self, tmp_path):
        # A final segment with a valid footer at EOF was sealed: an
        # interior payload CRC mismatch is bitrot in acknowledged data,
        # not a torn tail — recovery must refuse to prefix-truncate.
        writer = _fill(_store(tmp_path), PAYLOADS)
        writer.close()  # single sealed (and final) segment
        path = max(tmp_path.glob("seg-*.bseg"))
        data = bytearray(path.read_bytes())
        data[_HEADER.size + _RECORD.size] ^= 0xFF  # first payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(IndexError_, match="sealed"):
            _store(tmp_path).recover()
        # the evidence must survive: no in-place reseal happened
        assert path.read_bytes() == bytes(data)

    def test_wrong_shard_rejected(self, tmp_path):
        writer = _fill(_store(tmp_path, shard=3), PAYLOADS)
        writer.close()
        with pytest.raises(IndexError_, match="belongs to shard"):
            _store(tmp_path, shard=4).recover()

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(IndexError_, match="kind"):
            _store(tmp_path, kind="hog").append(b"payload")


class TestCompaction:
    def test_compact_preserves_content_and_fingerprint(self, tmp_path):
        store = _fill(_store(tmp_path, roll_bytes=32), [b"w" * 40] * 5)
        before = store.fingerprint()
        assert store.stats()["n_sealed_segments"] >= 2
        store.compact()
        assert store.stats()["n_sealed_segments"] == 1
        assert store.fingerprint() == before
        store.close()
        reader = _store(tmp_path, roll_bytes=32)
        assert reader.recover() == [b"w" * 40] * 5
        assert reader.fingerprint() == before

    def test_compact_then_append_continues_the_chain(self, tmp_path):
        store = _fill(_store(tmp_path, roll_bytes=32), [b"v" * 40] * 4)
        store.compact()
        store.append(b"after-compact")
        store.close()
        reader = _store(tmp_path, roll_bytes=32)
        assert reader.recover() == [b"v" * 40] * 4 + [b"after-compact"]

    def test_compact_noop_on_single_segment(self, tmp_path):
        store = _fill(_store(tmp_path), PAYLOADS)
        store.seal_active()
        info = store.compact()
        assert info is not None and info.n_records == len(PAYLOADS)
        assert store.compactions == 0


class TestInterruptedCompaction:
    """A crash between compact()'s rename and its input unlinks leaves
    the merged segment *and* (some of) the old sealed inputs on disk;
    recovery must resolve the overlap, never wedge the shard."""

    PAYLOADS = [b"m" * 40] * 4

    def _compact_leaving_inputs(self, tmp_path):
        store = _fill(_store(tmp_path, roll_bytes=32), self.PAYLOADS)
        store.seal_active()
        inputs = {p: p.read_bytes() for p in tmp_path.glob("seg-*.bseg")}
        assert len(inputs) >= 2
        fingerprint = store.fingerprint()
        store.compact()
        store.close()
        return inputs, fingerprint

    def test_leftover_inputs_are_verified_and_dropped(self, tmp_path):
        inputs, fingerprint = self._compact_leaving_inputs(tmp_path)
        for path, data in inputs.items():  # resurrect every input
            path.write_bytes(data)
        reader = _store(tmp_path, roll_bytes=32)
        assert reader.recover() == self.PAYLOADS
        assert reader.fingerprint() == fingerprint
        assert len(list(tmp_path.glob("seg-*.bseg"))) == 1

    def test_partially_unlinked_inputs_are_dropped(self, tmp_path):
        # The crash can also land mid-unlink: only a suffix of the old
        # inputs survives, so the chain cannot be rebuilt from record 0
        # out of the leftovers alone — the footer fingerprints carry
        # the verification instead.
        inputs, fingerprint = self._compact_leaving_inputs(tmp_path)
        survivor = max(inputs)
        survivor.write_bytes(inputs[survivor])
        reader = _store(tmp_path, roll_bytes=32)
        assert reader.recover() == self.PAYLOADS
        assert reader.fingerprint() == fingerprint

    def test_appends_continue_after_overlap_recovery(self, tmp_path):
        inputs, _ = self._compact_leaving_inputs(tmp_path)
        for path, data in inputs.items():
            path.write_bytes(data)
        resumed = _store(tmp_path, roll_bytes=32)
        resumed.recover()
        resumed.append(b"after-crash")
        resumed.close()
        reader = _store(tmp_path, roll_bytes=32)
        assert reader.recover() == self.PAYLOADS + [b"after-crash"]

    def test_divergent_restart_segment_refused(self, tmp_path):
        # A later base-0 segment that does NOT duplicate its
        # predecessors is divergence, not compaction residue.
        store = _fill(_store(tmp_path), [b"a", b"b"])
        store.close()
        impostor = SegmentWriter(
            tmp_path / "seg-00000001.bseg", "orb", 0, 0, FingerprintChain()
        )
        impostor.append(b"x")
        impostor.append(b"y")
        impostor.seal()
        with pytest.raises(IndexError_, match="refusing to drop"):
            _store(tmp_path).recover()

    def test_short_restart_segment_refused(self, tmp_path):
        # The leftover input holds records beyond the merged segment's
        # end — dropping it would lose acknowledged data.
        store = _fill(_store(tmp_path), [b"a", b"b", b"c"])
        store.close()
        short = SegmentWriter(
            tmp_path / "seg-00000001.bseg", "orb", 0, 0, FingerprintChain()
        )
        short.append(b"a")
        short.append(b"b")
        short.seal()
        with pytest.raises(IndexError_, match="beyond the merged"):
            _store(tmp_path).recover()
