"""Tests for index snapshot & restore."""

import pytest

from repro.errors import IndexError_
from repro.index import FeatureIndex
from repro.index.persistence import restore_index, snapshot_index


@pytest.fixture()
def populated_index(orb_features, orb_features_other):
    index = FeatureIndex()
    index.add(orb_features)
    index.add(orb_features_other)
    return index


class TestRoundTrip:
    def test_restores_entries(self, populated_index):
        restored = restore_index(snapshot_index(populated_index))
        assert len(restored) == len(populated_index)
        assert restored.kind == "orb"
        for features in populated_index._entries:
            assert features.image_id in restored

    def test_queries_identical_after_restore(
        self, populated_index, orb_features_alt_view
    ):
        restored = restore_index(snapshot_index(populated_index))
        before = populated_index.query(orb_features_alt_view)
        after = restored.query(orb_features_alt_view)
        assert before.best_id == after.best_id
        assert before.best_similarity == pytest.approx(after.best_similarity)

    def test_empty_index(self):
        restored = restore_index(snapshot_index(FeatureIndex()))
        assert len(restored) == 0

    def test_sift_index(self, sift, scene_image):
        index = FeatureIndex(kind="sift")
        index.add(sift.extract(scene_image))
        restored = restore_index(snapshot_index(index))
        assert restored.kind == "sift"
        assert len(restored) == 1

    def test_kwargs_passthrough(self, populated_index):
        restored = restore_index(snapshot_index(populated_index), n_tables=4)
        assert restored.n_tables == 4

    def test_restored_index_accepts_new_entries(self, populated_index, orb, generator):
        restored = restore_index(snapshot_index(populated_index))
        fresh = orb.extract(generator.view(901, 0, image_id="fresh"))
        restored.add(fresh)
        assert "fresh" in restored


class TestValidation:
    def test_rejects_bad_magic(self, populated_index):
        blob = bytearray(snapshot_index(populated_index))
        blob[0] = 0
        with pytest.raises(IndexError_):
            restore_index(bytes(blob))

    def test_rejects_truncation(self, populated_index):
        blob = snapshot_index(populated_index)
        with pytest.raises(IndexError_):
            restore_index(blob[:-10])

    def test_rejects_trailing_bytes(self, populated_index):
        with pytest.raises(IndexError_):
            restore_index(snapshot_index(populated_index) + b"junk")

    def test_rejects_empty_blob(self):
        with pytest.raises(IndexError_):
            restore_index(b"")
