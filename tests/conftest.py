"""Shared fixtures.

Feature extraction dominates test runtime, so everything derived from
images (feature sets, similarity matrices) is computed once per session
and shared; tests must treat these objects as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.server import BeesServer
from repro.features.orb import OrbExtractor
from repro.features.pca_sift import PcaSiftExtractor
from repro.features.sift import SiftExtractor
from repro.imaging.synth import SceneGenerator


@pytest.fixture(scope="session")
def generator():
    """The default deterministic scene generator."""
    return SceneGenerator()


@pytest.fixture(scope="session")
def orb():
    return OrbExtractor()


@pytest.fixture(scope="session")
def sift():
    return SiftExtractor()


@pytest.fixture(scope="session")
def pca_sift():
    return PcaSiftExtractor()


@pytest.fixture(scope="session")
def scene_image(generator):
    """One canonical test image."""
    return generator.view(7, 0, image_id="scene7-v0", group_id="scene7")


@pytest.fixture(scope="session")
def scene_image_alt_view(generator):
    """A second view of the same scene (ground-truth similar)."""
    return generator.view(7, 1, image_id="scene7-v1", group_id="scene7")


@pytest.fixture(scope="session")
def other_scene_image(generator):
    """An unrelated scene (ground-truth dissimilar)."""
    return generator.view(8, 0, image_id="scene8-v0", group_id="scene8")


@pytest.fixture(scope="session")
def orb_features(orb, scene_image):
    return orb.extract(scene_image)


@pytest.fixture(scope="session")
def orb_features_alt_view(orb, scene_image_alt_view):
    return orb.extract(scene_image_alt_view)


@pytest.fixture(scope="session")
def orb_features_other(orb, other_scene_image):
    return orb.extract(other_scene_image)


@pytest.fixture(scope="session")
def small_batch_features(generator, orb):
    """Features of a 8-image batch: 3 scenes x 2 views + 2 singles.

    Scene layout (by index): 0,1 = scene A; 2,3 = scene B; 4,5 = scene C;
    6 = scene D; 7 = scene E.  Used by the SSMM and client tests.
    """
    images = []
    for scene, views in ((20, 2), (21, 2), (22, 2), (23, 1), (24, 1)):
        for view in range(views):
            images.append(
                generator.view(
                    scene, view, image_id=f"s{scene}v{view}", group_id=f"s{scene}"
                )
            )
    return images, [orb.extract(image) for image in images]


@pytest.fixture()
def empty_server():
    """A fresh ORB-indexed server per test."""
    return BeesServer()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)
