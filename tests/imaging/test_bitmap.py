"""Tests for bitmap (AFE) compression semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ImageError
from repro.imaging.bitmap import (
    MAX_PROPORTION,
    compress_bitmap,
    compress_image,
    compressed_dimensions,
    pixel_fraction,
    validate_proportion,
)


class TestProportionSemantics:
    def test_paper_example(self):
        # A 1000x500 bitmap at proportion 0.4 becomes 600x300.
        assert compressed_dimensions(500, 1000, 0.4) == (300, 600)

    def test_zero_is_identity(self):
        assert compressed_dimensions(120, 160, 0.0) == (120, 160)

    def test_dimension_floor_is_one(self):
        assert compressed_dimensions(2, 2, 0.9) == (1, 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ImageError):
            validate_proportion(-0.1)
        with pytest.raises(ImageError):
            validate_proportion(MAX_PROPORTION + 0.01)

    @given(st.floats(min_value=0.0, max_value=MAX_PROPORTION))
    def test_pixel_fraction_is_square_of_linear_scale(self, proportion):
        assert pixel_fraction(proportion) == pytest.approx((1 - proportion) ** 2)

    @given(
        st.integers(min_value=8, max_value=400),
        st.integers(min_value=8, max_value=400),
        st.floats(min_value=0.0, max_value=MAX_PROPORTION),
    )
    def test_compressed_dimensions_monotone_and_bounded(self, h, w, proportion):
        nh, nw = compressed_dimensions(h, w, proportion)
        assert 1 <= nh <= h
        assert 1 <= nw <= w


class TestCompressBitmap:
    def test_shrinks_array(self):
        bitmap = np.zeros((100, 100, 3), dtype=np.uint8)
        assert compress_bitmap(bitmap, 0.5).shape == (50, 50, 3)

    def test_identity_returns_same_object(self):
        bitmap = np.zeros((10, 10, 3), dtype=np.uint8)
        assert compress_bitmap(bitmap, 0.0) is bitmap


class TestCompressImage:
    def test_preserves_nominal_bytes(self, scene_image):
        compressed = compress_image(scene_image, 0.4)
        assert compressed.nominal_bytes == scene_image.nominal_bytes

    def test_preserves_identity_metadata(self, scene_image):
        compressed = compress_image(scene_image, 0.4)
        assert compressed.image_id == scene_image.image_id
        assert compressed.group_id == scene_image.group_id

    def test_shrinks_bitmap(self, scene_image):
        compressed = compress_image(scene_image, 0.4)
        assert compressed.pixels < scene_image.pixels
        assert compressed.pixels == pytest.approx(
            scene_image.pixels * 0.36, rel=0.05
        )
