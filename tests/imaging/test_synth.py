"""Tests for the synthetic scene generator."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.ssim import ssim
from repro.imaging.synth import PerturbationSpec, SceneGenerator


class TestDeterminism:
    def test_same_seed_same_scene(self, generator):
        assert np.array_equal(generator.scene(5), generator.scene(5))

    def test_different_seed_different_scene(self, generator):
        assert not np.array_equal(generator.scene(5), generator.scene(6))

    def test_same_view_reproducible(self, generator):
        a = generator.view(5, 2)
        b = generator.view(5, 2)
        assert np.array_equal(a.bitmap, b.bitmap)

    def test_views_differ_from_canonical(self, generator):
        assert not np.array_equal(
            generator.view(5, 0).bitmap, generator.view(5, 1).bitmap
        )

    def test_fresh_generator_instances_agree(self):
        assert np.array_equal(SceneGenerator().scene(9), SceneGenerator().scene(9))


class TestSimilarityStructure:
    def test_same_scene_views_more_similar_than_cross_scene(self, generator):
        base = generator.view(30, 0)
        same = generator.view(30, 1)
        other = generator.view(31, 0)
        assert ssim(base, same) > ssim(base, other)

    def test_shared_fraction_increases_overlap(self, generator):
        plain = generator.scene(40)
        shared = generator.scene(40, shared_seed=999, shared_fraction=0.5)
        assert not np.array_equal(plain, shared)

    def test_shared_fraction_zero_matches_plain(self, generator):
        plain = generator.scene(40)
        with_family = generator.scene(40, shared_seed=999, shared_fraction=0.0)
        assert np.array_equal(plain, with_family)

    def test_family_members_share_content(self, generator):
        a = generator.scene(41, shared_seed=7, shared_fraction=0.8)
        b = generator.scene(42, shared_seed=7, shared_fraction=0.8)
        c = generator.scene(43, shared_seed=8, shared_fraction=0.8)
        # Same-family scenes correlate more than cross-family ones.
        corr_ab = np.corrcoef(a.ravel().astype(float), b.ravel().astype(float))[0, 1]
        corr_ac = np.corrcoef(a.ravel().astype(float), c.ravel().astype(float))[0, 1]
        assert corr_ab > corr_ac

    def test_rejects_bad_shared_fraction(self, generator):
        with pytest.raises(ImageError):
            generator.scene(1, shared_seed=2, shared_fraction=1.5)


class TestConfiguration:
    def test_custom_size(self):
        gen = SceneGenerator(height=64, width=96)
        assert gen.view(1, 0).resolution == (96, 64)

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ImageError):
            SceneGenerator(height=16, width=16)

    def test_rejects_bad_shape_range(self):
        with pytest.raises(ImageError):
            SceneGenerator(min_shapes=5, max_shapes=2)

    def test_view_ids(self, generator):
        image = generator.view(3, 1, image_id="custom", group_id="grp")
        assert image.image_id == "custom"
        assert image.group_id == "grp"

    def test_default_ids(self, generator):
        image = generator.view(3, 1)
        assert image.image_id == "scene3-v1"
        assert image.group_id == "scene3"


class TestPerturbationSpec:
    def test_rejects_negative_shift(self):
        with pytest.raises(ImageError):
            PerturbationSpec(max_shift=-1)

    def test_rejects_bad_crop(self):
        with pytest.raises(ImageError):
            PerturbationSpec(min_crop=0.0)

    def test_rejects_bad_contrast(self):
        with pytest.raises(ImageError):
            PerturbationSpec(contrast_range=(1.2, 0.8))

    def test_no_perturbation_spec(self):
        gen = SceneGenerator(
            perturbation=PerturbationSpec(
                max_shift=0, max_brightness=0.0, contrast_range=(1.0, 1.0),
                noise_sigma=0.0, min_crop=1.0,
            )
        )
        # With every knob zeroed, all views equal the canonical scene.
        assert np.array_equal(gen.view(2, 0).bitmap, gen.view(2, 3).bitmap)
