"""Tests for the SSIM metric."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.image import Image
from repro.imaging.ssim import ssim, ssim_map
from repro.imaging.transforms import add_gaussian_noise


class TestSsim:
    def test_identical_images_score_one(self, scene_image):
        assert ssim(scene_image, scene_image) == pytest.approx(1.0)

    def test_symmetric(self, scene_image, scene_image_alt_view):
        ab = ssim(scene_image, scene_image_alt_view)
        ba = ssim(scene_image_alt_view, scene_image)
        assert ab == pytest.approx(ba)

    def test_noise_lowers_score(self, scene_image):
        rng = np.random.default_rng(0)
        mild = scene_image.with_bitmap(add_gaussian_noise(scene_image.bitmap, 5.0, rng))
        heavy = scene_image.with_bitmap(add_gaussian_noise(scene_image.bitmap, 40.0, rng))
        assert ssim(scene_image, heavy) < ssim(scene_image, mild) < 1.0

    def test_bounded(self, scene_image, other_scene_image):
        score = ssim(scene_image, other_scene_image)
        assert -1.0 <= score <= 1.0

    def test_inverted_image_scores_low(self):
        ramp = np.tile(np.linspace(10, 245, 64), (64, 1))
        a = Image(bitmap=np.repeat(ramp[:, :, None], 3, axis=2).astype(np.uint8))
        b = Image(bitmap=(255 - a.bitmap))
        assert ssim(a, b) < 0.1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ImageError):
            ssim_map(np.zeros((20, 20)), np.zeros((20, 21)))

    def test_too_small_plane_rejected(self):
        with pytest.raises(ImageError):
            ssim_map(np.zeros((5, 5)), np.zeros((5, 5)))

    def test_map_shape(self):
        plane = np.random.default_rng(0).uniform(0, 255, (30, 40))
        assert ssim_map(plane, plane).shape == (30, 40)
