"""Tests for resolution (AIU) compression semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ImageError
from repro.imaging.resolution import (
    SIZE_FLOOR_FRACTION,
    compress_resolution,
    compressed_resolution,
    size_factor,
)


class TestSizeFactor:
    def test_zero_proportion_is_unity(self):
        assert size_factor(0.0) == pytest.approx(1.0)

    def test_paper_example_87_percent_saving(self):
        # Cr = 0.76 (Ebat = 5%) keeps 0.24^2 of the pixels — "about 87%
        # file size" saved per the paper's 8 MP example.
        assert 1.0 - size_factor(0.76) == pytest.approx(0.87, abs=0.03)

    @given(st.floats(min_value=0.0, max_value=0.95))
    def test_bounded_by_floor_and_unity(self, proportion):
        factor = size_factor(proportion)
        assert SIZE_FLOOR_FRACTION <= factor <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.95),
    )
    def test_monotone_decreasing(self, a, b):
        low, high = sorted((a, b))
        assert size_factor(high) <= size_factor(low)


class TestCompressedResolution:
    def test_paper_example(self):
        # 1000x500 at proportion 0.2 becomes 800x400.
        assert compressed_resolution(1000, 500, 0.2) == (800, 400)

    def test_8mp_example(self):
        # 2448x3264 at Cr = 0.76 is still 588x783 (paper, Section III-C).
        width, height = compressed_resolution(2448, 3264, 0.76)
        assert (width, height) == (588, 783)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ImageError):
            compressed_resolution(0, 100, 0.2)


class TestCompressResolution:
    def test_identity_at_zero(self, scene_image):
        assert compress_resolution(scene_image, 0.0) is scene_image

    def test_shrinks_bitmap_and_bytes(self, scene_image):
        compressed = compress_resolution(scene_image, 0.5)
        assert compressed.width == scene_image.width // 2
        assert compressed.nominal_bytes < scene_image.nominal_bytes

    def test_shrinks_nominal_resolution(self, scene_image):
        compressed = compress_resolution(scene_image, 0.5)
        assert compressed.nominal_resolution[0] == scene_image.nominal_resolution[0] // 2

    def test_byte_scaling_matches_size_factor(self, scene_image):
        compressed = compress_resolution(scene_image, 0.6)
        expected = scene_image.nominal_bytes * size_factor(0.6)
        assert compressed.nominal_bytes == pytest.approx(expected, rel=0.01)

    def test_metadata_preserved(self, scene_image):
        compressed = compress_resolution(scene_image, 0.3)
        assert compressed.image_id == scene_image.image_id
