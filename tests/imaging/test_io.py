"""Tests for PPM/PGM image I/O."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.imaging.io import read_netpbm, write_pgm, write_ppm


class TestPpmRoundTrip:
    def test_roundtrip_preserves_pixels(self, scene_image, tmp_path):
        path = tmp_path / "scene.ppm"
        write_ppm(scene_image, path)
        loaded = read_netpbm(path)
        assert np.array_equal(loaded.bitmap, scene_image.bitmap)

    def test_image_id_from_stem(self, scene_image, tmp_path):
        path = tmp_path / "bridge-2.ppm"
        write_ppm(scene_image, path)
        assert read_netpbm(path).image_id == "bridge-2"

    def test_pgm_roundtrip_is_luma(self, scene_image, tmp_path):
        path = tmp_path / "scene.pgm"
        write_pgm(scene_image, path)
        loaded = read_netpbm(path)
        assert loaded.bitmap.shape == scene_image.bitmap.shape
        # All three channels equal (grayscale broadcast).
        assert np.array_equal(loaded.bitmap[:, :, 0], loaded.bitmap[:, :, 1])
        expected = np.clip(np.rint(scene_image.gray()), 0, 255).astype(np.uint8)
        assert np.array_equal(loaded.bitmap[:, :, 0], expected)


class TestHeaderParsing:
    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.ppm"
        pixels = bytes(range(12))
        path.write_bytes(b"P6\n# a comment\n2 2\n# another\n255\n" + pixels)
        image = read_netpbm(path)
        assert image.resolution == (2, 2)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P3\n1 1\n255\n abc")
        with pytest.raises(CodecError):
            read_netpbm(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P6\n2 2")
        with pytest.raises(CodecError):
            read_netpbm(path)

    def test_truncated_pixels_rejected(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P6\n2 2\n255\n\x00\x01")
        with pytest.raises(CodecError):
            read_netpbm(path)

    def test_16bit_rejected(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P6\n1 1\n65535\n" + b"\x00" * 6)
        with pytest.raises(CodecError):
            read_netpbm(path)

    def test_bad_dimensions_rejected(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P6\n0 2\n255\n")
        with pytest.raises(CodecError):
            read_netpbm(path)

    def test_non_numeric_token_rejected(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P6\ntwo 2\n255\n\x00")
        with pytest.raises(CodecError):
            read_netpbm(path)
