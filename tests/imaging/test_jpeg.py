"""Tests for the JPEG-style codec."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.imaging import jpeg
from repro.imaging.image import Image
from repro.imaging.ssim import ssim


class TestQualityMapping:
    def test_proportion_zero_is_quality_100(self):
        assert jpeg.proportion_to_quality(0.0) == 100

    def test_proportion_085_is_quality_15(self):
        assert jpeg.proportion_to_quality(0.85) == 15

    def test_quality_never_below_one(self):
        assert jpeg.proportion_to_quality(0.95) >= 1

    def test_quant_table_scales_with_quality(self):
        strict = jpeg.quant_table_for_quality(10)
        lax = jpeg.quant_table_for_quality(90)
        assert (strict >= lax).all()
        assert strict.sum() > lax.sum()

    def test_quant_table_bounds(self):
        table = jpeg.quant_table_for_quality(1)
        assert table.min() >= 1.0
        assert table.max() <= 255.0

    def test_quant_table_rejects_out_of_range(self):
        with pytest.raises(CodecError):
            jpeg.quant_table_for_quality(0)
        with pytest.raises(CodecError):
            jpeg.quant_table_for_quality(101)


class TestRoundTrip:
    def test_decode_shape_matches(self, scene_image):
        encoded = jpeg.encode(scene_image, 0.5)
        decoded = jpeg.decode(encoded)
        assert decoded.shape == scene_image.bitmap.shape

    def test_mild_compression_high_fidelity(self, scene_image):
        compressed = jpeg.compress_quality(scene_image, 0.2)
        assert ssim(scene_image, compressed) > 0.93

    def test_heavy_compression_lower_fidelity(self, scene_image):
        mild = jpeg.compress_quality(scene_image, 0.2)
        heavy = jpeg.compress_quality(scene_image, 0.95)
        assert ssim(scene_image, heavy) < ssim(scene_image, mild)

    def test_non_multiple_of_8_dimensions(self):
        rng = np.random.default_rng(0)
        image = Image(bitmap=rng.integers(0, 255, (37, 53, 3)).astype(np.uint8))
        encoded = jpeg.encode(image, 0.5)
        assert jpeg.decode(encoded).shape == (37, 53, 3)

    def test_constant_image_tiny_payload(self):
        image = Image(bitmap=np.full((64, 64, 3), 90, dtype=np.uint8))
        encoded = jpeg.encode(image, 0.5)
        # DC-only content: essentially header + per-block DC bits.
        assert encoded.estimated_bytes < jpeg.HEADER_BYTES + 700


class TestSizeModel:
    def test_size_decreases_with_proportion(self, scene_image):
        sizes = [
            jpeg.encode(scene_image, p).estimated_bytes for p in (0.0, 0.4, 0.85, 0.95)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_size_factor_normalised_to_nominal_baseline(self, scene_image):
        assert jpeg.size_factor(scene_image, jpeg.NOMINAL_QUALITY_PROPORTION) == 1.0
        assert jpeg.size_factor(scene_image, 0.0) == 1.0  # capped

    def test_size_factor_at_085_in_paper_regime(self, scene_image):
        # "Normal quality" JPEG re-encoded at quality 15 keeps roughly a
        # third of the bytes.
        factor = jpeg.size_factor(scene_image, 0.85)
        assert 0.2 < factor < 0.6

    def test_compress_quality_updates_nominal_bytes(self, scene_image):
        compressed = jpeg.compress_quality(scene_image, 0.85)
        assert compressed.nominal_bytes < scene_image.nominal_bytes
        assert compressed.resolution == scene_image.resolution
