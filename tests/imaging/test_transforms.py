"""Tests for geometric and photometric transforms."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.transforms import (
    add_gaussian_noise,
    adjust_brightness,
    adjust_contrast,
    center_crop_fraction,
    resize_area,
    resize_bilinear,
    translate,
)


def _gradient_bitmap(h=24, w=32):
    ramp = np.linspace(0, 255, w, dtype=np.uint8)
    return np.repeat(np.tile(ramp, (h, 1))[:, :, None], 3, axis=2)


class TestResize:
    def test_bilinear_identity(self):
        bitmap = _gradient_bitmap()
        assert np.array_equal(resize_bilinear(bitmap, 24, 32), bitmap)

    def test_bilinear_shape(self):
        assert resize_bilinear(_gradient_bitmap(), 12, 16).shape == (12, 16, 3)

    def test_bilinear_upscale_shape(self):
        assert resize_bilinear(_gradient_bitmap(), 48, 64).shape == (48, 64, 3)

    def test_bilinear_preserves_constant(self):
        bitmap = np.full((20, 20, 3), 99, dtype=np.uint8)
        assert np.all(resize_bilinear(bitmap, 7, 13) == 99)

    def test_bilinear_rejects_zero_target(self):
        with pytest.raises(ImageError):
            resize_bilinear(_gradient_bitmap(), 0, 10)

    def test_area_integer_shrink_is_block_mean(self):
        bitmap = np.zeros((4, 4, 3), dtype=np.uint8)
        bitmap[:2, :2] = 100
        small = resize_area(bitmap, 2, 2)
        assert small[0, 0, 0] == 100
        assert small[1, 1, 0] == 0

    def test_area_preserves_mean(self):
        rng = np.random.default_rng(3)
        bitmap = rng.integers(0, 255, (32, 32, 3)).astype(np.uint8)
        small = resize_area(bitmap, 8, 8)
        assert float(small.mean()) == pytest.approx(float(bitmap.mean()), abs=2.0)

    def test_area_fractional_falls_back(self):
        assert resize_area(_gradient_bitmap(), 10, 11).shape == (10, 11, 3)


class TestTranslate:
    def test_shift_moves_content(self):
        bitmap = np.zeros((10, 10, 3), dtype=np.uint8)
        bitmap[4, 4] = 200
        shifted = translate(bitmap, 2, 3)
        assert shifted[6, 7, 0] == 200

    def test_zero_shift_identity(self):
        bitmap = _gradient_bitmap()
        assert np.array_equal(translate(bitmap, 0, 0), bitmap)

    def test_shape_preserved(self):
        assert translate(_gradient_bitmap(), -3, 5).shape == (24, 32, 3)

    def test_rejects_oversized_shift(self):
        with pytest.raises(ImageError):
            translate(_gradient_bitmap(), 24, 0)


class TestPhotometric:
    def test_brightness_adds_delta(self):
        bitmap = np.full((8, 8, 3), 100, dtype=np.uint8)
        assert np.all(adjust_brightness(bitmap, 25) == 125)

    def test_brightness_clips(self):
        bitmap = np.full((8, 8, 3), 250, dtype=np.uint8)
        assert np.all(adjust_brightness(bitmap, 20) == 255)

    def test_contrast_pivot_is_midgray(self):
        bitmap = np.full((8, 8, 3), 128, dtype=np.uint8)
        assert np.all(adjust_contrast(bitmap, 1.7) == 128)

    def test_contrast_expands_range(self):
        bitmap = np.full((8, 8, 3), 100, dtype=np.uint8)
        assert np.all(adjust_contrast(bitmap, 2.0) == 72)

    def test_contrast_rejects_nonpositive(self):
        with pytest.raises(ImageError):
            adjust_contrast(_gradient_bitmap(), 0.0)

    def test_noise_is_deterministic_per_seed(self):
        bitmap = _gradient_bitmap()
        a = add_gaussian_noise(bitmap, 5.0, np.random.default_rng(1))
        b = add_gaussian_noise(bitmap, 5.0, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_noise_sigma_zero_identity(self):
        bitmap = _gradient_bitmap()
        out = add_gaussian_noise(bitmap, 0.0, np.random.default_rng(1))
        assert np.array_equal(out, bitmap)

    def test_noise_rejects_negative_sigma(self):
        with pytest.raises(ImageError):
            add_gaussian_noise(_gradient_bitmap(), -1.0, np.random.default_rng(1))


class TestCrop:
    def test_full_fraction_identity(self):
        bitmap = _gradient_bitmap()
        assert np.array_equal(center_crop_fraction(bitmap, 1.0), bitmap)

    def test_shape_preserved(self):
        assert center_crop_fraction(_gradient_bitmap(), 0.8).shape == (24, 32, 3)

    def test_zooms_in(self):
        # A centred bright square grows when we crop-zoom.
        bitmap = np.zeros((40, 40, 3), dtype=np.uint8)
        bitmap[15:25, 15:25] = 255
        zoomed = center_crop_fraction(bitmap, 0.5)
        assert (zoomed > 128).sum() > (bitmap > 128).sum()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ImageError):
            center_crop_fraction(_gradient_bitmap(), 0.0)
