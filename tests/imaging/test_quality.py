"""Tests for MSE/PSNR quality metrics."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.image import Image
from repro.imaging.jpeg import compress_quality
from repro.imaging.quality import mse, psnr
from repro.imaging.transforms import add_gaussian_noise


class TestMse:
    def test_identical_images_zero(self, scene_image):
        assert mse(scene_image, scene_image) == 0.0

    def test_known_value(self):
        a = Image(bitmap=np.zeros((16, 16, 3), dtype=np.uint8))
        b = Image(bitmap=np.full((16, 16, 3), 10, dtype=np.uint8))
        assert mse(a, b) == pytest.approx(100.0)

    def test_symmetric(self, scene_image, scene_image_alt_view):
        assert mse(scene_image, scene_image_alt_view) == pytest.approx(
            mse(scene_image_alt_view, scene_image)
        )

    def test_shape_mismatch_rejected(self, scene_image):
        small = Image(bitmap=np.zeros((16, 16, 3), dtype=np.uint8))
        with pytest.raises(ImageError):
            mse(scene_image, small)


class TestPsnr:
    def test_identical_is_infinite(self, scene_image):
        assert psnr(scene_image, scene_image) == float("inf")

    def test_more_noise_lower_psnr(self, scene_image):
        rng = np.random.default_rng(0)
        mild = scene_image.with_bitmap(add_gaussian_noise(scene_image.bitmap, 3.0, rng))
        heavy = scene_image.with_bitmap(add_gaussian_noise(scene_image.bitmap, 30.0, rng))
        assert psnr(scene_image, heavy) < psnr(scene_image, mild)

    def test_codec_quality_regime(self, scene_image):
        """A mild JPEG round-trip lands in the familiar 28-50 dB band."""
        compressed = compress_quality(scene_image, 0.5)
        value = psnr(scene_image, compressed)
        assert 25.0 < value < 50.0

    def test_quality_monotone_through_codec(self, scene_image):
        mild = compress_quality(scene_image, 0.3)
        harsh = compress_quality(scene_image, 0.95)
        assert psnr(scene_image, harsh) < psnr(scene_image, mild)
