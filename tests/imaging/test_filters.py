"""Tests for the low-level filters."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.filters import (
    box_blur,
    gaussian_blur,
    gaussian_kernel1d,
    gradient_magnitude_orientation,
    local_maxima,
    sobel_gradients,
)


class TestGaussianKernel:
    def test_normalised(self):
        assert gaussian_kernel1d(1.5).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        kernel = gaussian_kernel1d(2.0)
        assert np.allclose(kernel, kernel[::-1])

    def test_radius_override(self):
        assert len(gaussian_kernel1d(1.0, radius=4)) == 9

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ImageError):
            gaussian_kernel1d(0.0)


class TestGaussianBlur:
    def test_preserves_constant_plane(self):
        plane = np.full((20, 30), 42.0)
        assert np.allclose(gaussian_blur(plane, 2.0), 42.0)

    def test_preserves_mean_approximately(self):
        rng = np.random.default_rng(0)
        plane = rng.uniform(0, 255, (40, 40))
        blurred = gaussian_blur(plane, 1.5)
        assert blurred.mean() == pytest.approx(plane.mean(), rel=0.02)

    def test_reduces_variance(self):
        rng = np.random.default_rng(0)
        plane = rng.uniform(0, 255, (40, 40))
        assert gaussian_blur(plane, 2.0).var() < plane.var()

    def test_rejects_non_2d(self):
        with pytest.raises(ImageError):
            gaussian_blur(np.zeros((4, 4, 3)), 1.0)


class TestBoxBlur:
    def test_radius_zero_is_identity(self):
        plane = np.arange(20.0).reshape(4, 5)
        assert np.array_equal(box_blur(plane, 0), plane)

    def test_matches_manual_average(self):
        plane = np.arange(25.0).reshape(5, 5)
        blurred = box_blur(plane, 1)
        manual = plane[1:4, 1:4].mean()  # centre pixel window
        assert blurred[2, 2] == pytest.approx(manual)

    def test_constant_plane_unchanged(self):
        plane = np.full((10, 10), 7.0)
        assert np.allclose(box_blur(plane, 3), 7.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ImageError):
            box_blur(np.zeros(4), 1)


class TestSobel:
    def test_vertical_edge_has_horizontal_gradient(self):
        plane = np.zeros((10, 10))
        plane[:, 5:] = 100.0
        gx, gy = sobel_gradients(plane)
        assert np.abs(gx[5, 4:6]).max() > 0
        assert np.allclose(gy[3:7, 3:7], 0.0, atol=1e-9)

    def test_constant_plane_zero_gradient(self):
        gx, gy = sobel_gradients(np.full((8, 8), 3.0))
        assert np.allclose(gx, 0.0)
        assert np.allclose(gy, 0.0)

    def test_magnitude_orientation_shapes(self):
        mag, ori = gradient_magnitude_orientation(np.eye(6) * 10)
        assert mag.shape == (6, 6)
        assert ori.shape == (6, 6)
        assert (mag >= 0).all()
        assert (np.abs(ori) <= np.pi).all()


class TestLocalMaxima:
    def test_single_peak(self):
        plane = np.zeros((9, 9))
        plane[4, 4] = 5.0
        mask = local_maxima(plane, radius=1)
        assert mask[4, 4]
        assert mask.sum() == 1

    def test_plateau_not_maxima(self):
        plane = np.full((9, 9), 2.0)
        assert not local_maxima(plane, radius=1).any()

    def test_two_separated_peaks(self):
        plane = np.zeros((9, 9))
        plane[2, 2] = 5.0
        plane[6, 6] = 7.0
        mask = local_maxima(plane, radius=1)
        assert mask[2, 2] and mask[6, 6]

    def test_adjacent_peaks_suppressed_by_radius(self):
        plane = np.zeros((9, 9))
        plane[4, 3] = 5.0
        plane[4, 5] = 7.0
        mask = local_maxima(plane, radius=2)
        assert mask[4, 5]
        assert not mask[4, 3]

    def test_rejects_non_2d(self):
        with pytest.raises(ImageError):
            local_maxima(np.zeros(5))
