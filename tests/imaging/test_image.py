"""Tests for the Image container."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.image import (
    DEFAULT_NOMINAL_BYTES,
    DEFAULT_NOMINAL_RESOLUTION,
    Image,
)


def _bitmap(h=40, w=60, value=128):
    return np.full((h, w, 3), value, dtype=np.uint8)


class TestConstruction:
    def test_accepts_uint8_rgb(self):
        image = Image(bitmap=_bitmap())
        assert image.height == 40
        assert image.width == 60

    def test_grayscale_broadcast_to_rgb(self):
        image = Image(bitmap=np.zeros((10, 12), dtype=np.uint8))
        assert image.bitmap.shape == (10, 12, 3)

    def test_float_bitmap_is_clipped_and_rounded(self):
        arr = np.full((8, 8, 3), 300.6)
        image = Image(bitmap=arr)
        assert image.bitmap.dtype == np.uint8
        assert image.bitmap.max() == 255

    def test_negative_int_bitmap_clipped(self):
        arr = np.full((8, 8, 3), -5, dtype=np.int32)
        assert Image(bitmap=arr).bitmap.min() == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(ImageError):
            Image(bitmap=np.zeros((4, 4, 2), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(ImageError):
            Image(bitmap=np.zeros((0, 4, 3), dtype=np.uint8))

    def test_rejects_bad_dtype(self):
        with pytest.raises(ImageError):
            Image(bitmap=np.zeros((4, 4, 3), dtype=complex))

    def test_rejects_nonpositive_nominal_bytes(self):
        with pytest.raises(ImageError):
            Image(bitmap=_bitmap(), nominal_bytes=0)

    def test_rejects_bad_nominal_resolution(self):
        with pytest.raises(ImageError):
            Image(bitmap=_bitmap(), nominal_resolution=(0, 100))

    def test_bitmap_is_readonly(self):
        image = Image(bitmap=_bitmap())
        with pytest.raises(ValueError):
            image.bitmap[0, 0, 0] = 1


class TestProperties:
    def test_defaults(self):
        image = Image(bitmap=_bitmap())
        assert image.nominal_bytes == DEFAULT_NOMINAL_BYTES
        assert image.nominal_resolution == DEFAULT_NOMINAL_RESOLUTION

    def test_resolution_is_width_height(self):
        assert Image(bitmap=_bitmap(30, 50)).resolution == (50, 30)

    def test_pixels(self):
        assert Image(bitmap=_bitmap(30, 50)).pixels == 1500

    def test_nominal_pixels(self):
        image = Image(bitmap=_bitmap(), nominal_resolution=(100, 80))
        assert image.nominal_pixels == 8000

    def test_gray_uses_bt601_weights(self):
        arr = np.zeros((10, 10, 3), dtype=np.uint8)
        arr[:, :, 1] = 100  # green only
        gray = Image(bitmap=arr).gray()
        assert np.allclose(gray, 58.7)

    def test_gray_range(self, scene_image):
        gray = scene_image.gray()
        assert gray.min() >= 0.0
        assert gray.max() <= 255.0


class TestDerivation:
    def test_with_bitmap_preserves_metadata(self):
        image = Image(bitmap=_bitmap(), image_id="x", group_id="g", geotag=(1.0, 2.0))
        derived = image.with_bitmap(_bitmap(20, 20))
        assert derived.image_id == "x"
        assert derived.group_id == "g"
        assert derived.geotag == (1.0, 2.0)
        assert derived.height == 20

    def test_with_bitmap_override(self):
        image = Image(bitmap=_bitmap())
        derived = image.with_bitmap(_bitmap(), nominal_bytes=100)
        assert derived.nominal_bytes == 100

    def test_scaled_nominal_bytes(self):
        image = Image(bitmap=_bitmap(), nominal_bytes=1000)
        assert image.scaled_nominal_bytes(0.5) == 500

    def test_scaled_nominal_bytes_floor_is_one(self):
        image = Image(bitmap=_bitmap(), nominal_bytes=1000)
        assert image.scaled_nominal_bytes(0.0) == 1

    def test_scaled_nominal_bytes_rejects_negative(self):
        with pytest.raises(ImageError):
            Image(bitmap=_bitmap()).scaled_nominal_bytes(-0.1)
