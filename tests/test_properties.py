"""Cross-cutting property-based tests (hypothesis).

Module-level invariants live next to their modules; this file holds the
properties that span layers: energy conservation through the device,
Equation-2 metric axioms on random descriptor sets, submodularity of
weighted sums, serialization stability, and policy-pipeline coupling.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import LinearPolicy, eac_policy, eau_policy, edr_policy
from repro.core.ssmm import SubmodularSelector, partition_components
from repro.energy import Battery, EnergyMeter, WorkCost
from repro.features.base import FeatureSet
from repro.features.serialize import deserialize_features, serialize_features
from repro.features.similarity import jaccard_similarity
from repro.imaging.bitmap import compressed_dimensions
from repro.imaging.resolution import size_factor as resolution_size_factor
from repro.sim.device import Smartphone


def _feature_set(seed: int, n: int, image_id: str = "x") -> FeatureSet:
    rng = np.random.default_rng(seed)
    return FeatureSet(
        kind="orb",
        descriptors=rng.integers(0, 256, (n, 32)).astype(np.uint8),
        xs=rng.uniform(0, 100, n),
        ys=rng.uniform(0, 100, n),
        pixels_processed=int(rng.integers(0, 10**6)),
        image_id=image_id,
    )


class TestSimilarityMetricAxioms:
    @given(st.integers(0, 10**6), st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=30)
    def test_bounded(self, seed, n_a, n_b):
        a = _feature_set(seed, n_a)
        b = _feature_set(seed + 1, n_b)
        assert 0.0 <= jaccard_similarity(a, b) <= 1.0

    @given(st.integers(0, 10**6), st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=30)
    def test_symmetric(self, seed, n_a, n_b):
        a = _feature_set(seed, n_a)
        b = _feature_set(seed + 1, n_b)
        assert jaccard_similarity(a, b) == pytest.approx(jaccard_similarity(b, a))

    @given(st.integers(0, 10**6), st.integers(1, 20))
    @settings(max_examples=30)
    def test_identity(self, seed, n):
        a = _feature_set(seed, n)
        assert jaccard_similarity(a, a) == pytest.approx(1.0)


class TestSerializationStability:
    @given(st.integers(0, 10**6), st.integers(0, 30))
    @settings(max_examples=30)
    def test_roundtrip_is_identity(self, seed, n):
        original = _feature_set(seed, n, image_id=f"img-{seed}")
        restored = deserialize_features(serialize_features(original))
        assert np.array_equal(restored.descriptors, original.descriptors)
        assert restored.image_id == original.image_id

    @given(st.integers(0, 10**6), st.integers(1, 30))
    @settings(max_examples=20)
    def test_roundtrip_preserves_similarity(self, seed, n):
        a = _feature_set(seed, n, image_id="a")
        b = _feature_set(seed + 9, n, image_id="b")
        direct = jaccard_similarity(a, b)
        wired = jaccard_similarity(
            deserialize_features(serialize_features(a)),
            deserialize_features(serialize_features(b)),
        )
        assert wired == pytest.approx(direct)


class TestEnergyConservation:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0),
                st.sampled_from(["a", "b", "c"]),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=40)
    def test_meter_equals_battery_drain(self, operations):
        device = Smartphone()
        device.battery = Battery(capacity_joules=1000.0)
        for joules, category in operations:
            device.spend(WorkCost(seconds=1.0, joules=joules), category)
        drained = 1000.0 - device.battery.remaining_joules
        assert device.meter.total_joules == pytest.approx(drained)

    @given(st.lists(st.floats(min_value=0.0, max_value=400.0), max_size=20))
    @settings(max_examples=40)
    def test_snapshot_diff_partitions_total(self, drains):
        meter = EnergyMeter()
        half = len(drains) // 2
        for joules in drains[:half]:
            meter.record("first", joules)
        snapshot = meter.snapshot()
        for joules in drains[half:]:
            meter.record("second", joules)
        delta = sum(meter.since(snapshot).values())
        assert delta == pytest.approx(sum(drains[half:]))


class TestPolicyGeometry:
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_policies_lipschitz(self, a, b):
        """Linear policies never jump: |Δvalue| <= |slope| * |ΔEbat|."""
        for policy, slope in (
            (eac_policy(), 0.4),
            (edr_policy(), 0.006),
            (eau_policy(), 0.8),
        ):
            assert abs(policy(a) - policy(b)) <= slope * abs(a - b) + 1e-12

    @given(st.floats(-2.0, 2.0), st.floats(-2.0, 2.0), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_fixed_policy_ignores_ebat(self, value, _unused, ebat):
        policy = LinearPolicy.fixed(value)
        assert policy(ebat) == value


class TestSubmodularityOfWeightedSums:
    @given(
        st.integers(0, 10**6),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=30)
    def test_weighted_sum_stays_submodular(self, seed, w_cov, w_div):
        """Section III-B2: a non-negative weighted sum of submodular
        functions is submodular — checked on random weight matrices."""
        rng = np.random.default_rng(seed)
        n = 6
        raw = rng.uniform(0, 1, (n, n))
        weights = (raw + raw.T) / 2
        np.fill_diagonal(weights, 1.0)
        labels = partition_components(weights, 0.5)
        selector = SubmodularSelector(coverage_weight=w_cov, diversity_weight=w_div)

        small = [0]
        big = [0, 1, 2, 3]
        v = 5
        gain_small = selector.objective(weights, labels, small + [v]) - (
            selector.objective(weights, labels, small)
        )
        gain_big = selector.objective(weights, labels, big + [v]) - (
            selector.objective(weights, labels, big)
        )
        assert gain_small >= gain_big - 1e-9


class TestGeometrySemantics:
    @given(
        st.integers(8, 2000),
        st.integers(8, 2000),
        st.floats(min_value=0.0, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=50)
    def test_compression_composes_monotonically(self, h, w, p1, p2):
        """Compressing harder never yields a larger bitmap."""
        low, high = sorted((p1, p2))
        h_low, w_low = compressed_dimensions(h, w, low)
        h_high, w_high = compressed_dimensions(h, w, high)
        assert h_high <= h_low
        assert w_high <= w_low

    @given(st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=50)
    def test_resolution_size_factor_dominated_by_pixel_fraction(self, proportion):
        """The file never shrinks faster than its pixel count."""
        pixel_fraction = (1.0 - proportion) ** 2
        assert resolution_size_factor(proportion) >= pixel_fraction - 1e-12
