"""CFG construction edge cases plus generative structural properties.

The flow rules only see the program through :mod:`repro.lint.flow.cfg`,
so every control construct the codebase uses gets a shape test here:
branches, loop ``else`` clauses, ``try`` funnels, nested ``with``
regions, and the early-``return``-under-lock pattern BEES109 leans on.
The hypothesis suite then pins the two properties every client assumes
for *arbitrary* functions: the published graph is connected from the
entry, and a forward fixpoint over it terminates (converged, in
budget).
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.flow.cfg import (
    build_cfg,
    build_module_cfg,
    evaluated_nodes,
    iter_function_nodes,
)
from repro.lint.flow.dataflow import ForwardAnalysis, run_forward


def cfg_of(source):
    """The CFG of the first function defined in *source*."""
    tree = ast.parse(source)
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


def stmt_types(block):
    return [type(stmt).__name__ for stmt in block.statements]


def find_stmt(cfg, predicate):
    """The (block, stmt) pair of the unique statement matching *predicate*."""
    matches = [
        (block, stmt)
        for block, stmt in cfg.statements()
        if predicate(stmt)
    ]
    assert len(matches) == 1, matches
    return matches[0]


class TestBranches:
    def test_if_else_diamond(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        test_block, _ = find_stmt(cfg, lambda s: isinstance(s, ast.If))
        assert len(test_block.successors) == 2
        return_block, _ = find_stmt(cfg, lambda s: isinstance(s, ast.Return))
        assert len(return_block.predecessors) == 2

    def test_code_after_return_is_pruned(self):
        cfg = cfg_of(
            "def f():\n"
            "    return 1\n"
            "    dead = 2\n"
        )
        tree = cfg.func
        dead = tree.body[1]
        assert isinstance(dead, ast.Assign)
        assert cfg.block_of(dead) is None
        live = [stmt for _, stmt in cfg.statements()]
        assert dead not in live

    def test_raise_edges_to_exit(self):
        cfg = cfg_of(
            "def f():\n"
            "    raise ValueError('no')\n"
        )
        block, _ = find_stmt(cfg, lambda s: isinstance(s, ast.Raise))
        assert cfg.exit in block.successors


class TestLoops:
    def test_while_else_runs_only_on_normal_exit(self):
        cfg = cfg_of(
            "def f(n):\n"
            "    while n:\n"
            "        if n == 3:\n"
            "            break\n"
            "        n -= 1\n"
            "    else:\n"
            "        n = -1\n"
            "    return n\n"
        )
        header, _ = find_stmt(cfg, lambda s: isinstance(s, ast.While))
        else_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and ast.unparse(s) == "n = -1",
        )
        break_block, _ = find_stmt(cfg, lambda s: isinstance(s, ast.Break))
        return_block, _ = find_stmt(cfg, lambda s: isinstance(s, ast.Return))
        # Normal exit goes through the else clause; break skips it.
        assert else_block.block_id in header.successors
        assert else_block.block_id not in break_block.successors
        reaches_return = set(return_block.predecessors)
        assert else_block.block_id in reaches_return
        assert not (break_block.successors & {else_block.block_id})

    def test_for_else_and_continue(self):
        cfg = cfg_of(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            continue\n"
            "        use(item)\n"
            "    else:\n"
            "        done()\n"
        )
        header, _ = find_stmt(cfg, lambda s: isinstance(s, ast.For))
        continue_block, _ = find_stmt(
            cfg, lambda s: isinstance(s, ast.Continue)
        )
        assert header.block_id in continue_block.successors

    def test_loop_annotation_innermost_last(self):
        cfg = cfg_of(
            "def f(rows):\n"
            "    for row in rows:\n"
            "        while row:\n"
            "            row = step(row)\n"
        )
        block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Assign),
        )
        assert [type(loop).__name__ for loop in block.loops] == [
            "For",
            "While",
        ]


class TestTry:
    def test_try_except_else_finally_edges(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        handle()\n"
            "    else:\n"
            "        celebrate()\n"
            "    finally:\n"
            "        cleanup()\n"
            "    return 0\n"
        )
        body_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and ast.unparse(s) == "risky()",
        )
        handler_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and ast.unparse(s) == "handle()",
        )
        else_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and ast.unparse(s) == "celebrate()",
        )
        final_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and ast.unparse(s) == "cleanup()",
        )
        # Any try-body statement may raise into the handler.
        assert handler_block.block_id in body_block.successors
        # The else clause runs after a clean body.
        assert else_block.block_id in body_block.successors
        # Both the handler and the else path funnel through finally.
        assert final_block.block_id in handler_block.successors
        assert final_block.block_id in else_block.successors
        # finally dominates the code after the statement.
        return_block, _ = find_stmt(cfg, lambda s: isinstance(s, ast.Return))
        dom = cfg.dominators()
        assert final_block.block_id in dom[return_block.block_id]

    def test_bare_try_finally_with_terminating_body(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        final_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Expr)
            and ast.unparse(s) == "cleanup()",
        )
        assert final_block.predecessors  # the finally still runs


class TestWithRegions:
    def test_nested_with_contexts_accumulate(self):
        cfg = cfg_of(
            "def f(self):\n"
            "    with self._lock:\n"
            "        with open(path) as fh:\n"
            "            data = fh.read()\n"
            "    after = 1\n"
        )
        inner, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and ast.unparse(s.targets[0]) == "data",
        )
        assert inner.with_contexts == frozenset(
            {"self._lock", "open(path)"}
        )
        outside, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and ast.unparse(s.targets[0]) == "after",
        )
        assert outside.with_contexts == frozenset()

    def test_early_return_keeps_locked_region(self):
        # The BEES109 load-bearing shape: a return *inside* the with
        # body stays in the held region even though control leaves the
        # function, while the fall-through after the with does not.
        cfg = cfg_of(
            "def f(self, key):\n"
            "    with self._lock:\n"
            "        if key in self._entries:\n"
            "            return self._entries[key]\n"
            "    return None\n"
        )
        inner_return, inner_stmt = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Return) and s.value is not None
            and not isinstance(s.value, ast.Constant),
        )
        assert "self._lock" in inner_return.with_contexts
        assert cfg.exit in inner_return.successors
        outer_return, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Return)
            and isinstance(s.value, ast.Constant),
        )
        assert outer_return.with_contexts == frozenset()

    def test_multi_item_with(self):
        cfg = cfg_of(
            "def f(a, b):\n"
            "    with a.lock, b.lock:\n"
            "        x = 1\n"
        )
        inner, _ = find_stmt(cfg, lambda s: isinstance(s, ast.Assign))
        assert inner.with_contexts == frozenset({"a.lock", "b.lock"})


class TestEvaluatedNodes:
    def names(self, stmt):
        return {
            node.id
            for node in evaluated_nodes(stmt)
            if isinstance(node, ast.Name)
        }

    def test_if_contributes_only_its_test(self):
        stmt = ast.parse("if cond:\n    body_name = 1\n").body[0]
        assert self.names(stmt) == {"cond"}

    def test_for_contributes_target_and_iter(self):
        stmt = ast.parse("for item in items:\n    use(item)\n").body[0]
        assert self.names(stmt) == {"item", "items"}

    def test_lambda_body_is_not_evaluated(self):
        stmt = ast.parse("fn = lambda v: hidden(v)\n").body[0]
        assert "hidden" not in self.names(stmt)

    def test_lambda_defaults_are_evaluated(self):
        stmt = ast.parse("fn = lambda v=default: hidden(v)\n").body[0]
        names = self.names(stmt)
        assert "default" in names
        assert "hidden" not in names

    def test_comprehension_is_evaluated_inline(self):
        stmt = ast.parse("sizes = [len(p) for p in paths]\n").body[0]
        names = self.names(stmt)
        assert {"len", "p", "paths"} <= names

    def test_nested_def_body_is_opaque(self):
        stmt = ast.parse(
            "def outer():\n    secret()\n"
        ).body[0]
        assert self.names(stmt) == set()

    def test_nested_scopes_get_their_own_cfgs(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
        )
        functions = iter_function_nodes(tree)
        assert [func.name for func in functions] == ["outer", "inner"]
        for func in functions:
            assert build_cfg(func).blocks


class TestModuleCfg:
    def test_module_scope_flows_like_a_function(self):
        cfg = build_module_cfg(
            ast.parse("x = 1\nif x:\n    y = 2\nz = 3\n")
        )
        z_block, _ = find_stmt(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and ast.unparse(s.targets[0]) == "z",
        )
        assert len(z_block.predecessors) == 2

    def test_empty_module(self):
        cfg = build_module_cfg(ast.parse(""))
        assert cfg.entry in cfg.blocks


# -- generative properties ----------------------------------------------------

_simple = st.sampled_from(
    ["x = x + 1", "use(x)", "pass", "return x", "break", "continue", "raise"]
)


def _render(structure, depth=0):
    """Render a nested statement structure into function-body lines."""
    pad = "    " * depth
    lines = []
    for node in structure:
        if isinstance(node, str):
            if depth == 0 and node in ("break", "continue"):
                node = "pass"  # only legal inside a loop
            lines.append(pad + node)
        else:
            kind, children = node
            if kind == "if":
                lines.append(pad + "if x:")
            elif kind == "while":
                lines.append(pad + "while x:")
            elif kind == "for":
                lines.append(pad + "for x in xs:")
            elif kind == "with":
                lines.append(pad + "with lock:")
            else:  # try
                lines.append(pad + "try:")
            lines.extend(_render(children, depth + 1) or [pad + "    pass"])
            if kind == "try":
                lines.append(pad + "except Exception:")
                lines.append(pad + "    pass")
            elif kind == "if":
                lines.append(pad + "else:")
                lines.append(pad + "    pass")
    return lines


_structures = st.recursive(
    st.lists(_simple, min_size=1, max_size=3),
    lambda children: st.lists(
        st.one_of(
            _simple,
            st.tuples(
                st.sampled_from(["if", "while", "for", "with", "try"]),
                children,
            ),
        ),
        min_size=1,
        max_size=3,
    ),
    max_leaves=12,
)


class _CountingAnalysis(ForwardAnalysis):
    """A tiny two-level lattice: have we seen an assignment to x?"""

    def join_values(self, left, right):
        return left or right

    def transfer(self, block, stmt, state):
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            new = dict(state)
            new["x"] = True
            return new
        return state


@settings(max_examples=60, deadline=None)
@given(_structures)
def test_generated_cfgs_are_connected_and_fixpoints_terminate(structure):
    body = _render(structure) or ["pass"]
    source = "def f(x, xs, lock):\n" + "\n".join(
        "    " + line for line in body
    )
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # break/continue can land outside a loop at nested depth; the
        # generator is permissive by design, skip those shapes.
        return
    cfg = build_cfg(tree.body[0])
    # Property 1: every published block is reachable from the entry
    # (pruning keeps only the connected component, plus the exit).
    reachable = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.blocks[stack.pop()].successors:
            if succ not in reachable:
                reachable.add(succ)
                stack.append(succ)
    assert set(cfg.blocks) <= reachable | {cfg.exit}
    # Property 2: edges are symmetric (succ/pred views agree).
    for block_id, block in cfg.blocks.items():
        for succ in block.successors:
            assert block_id in cfg.blocks[succ].predecessors
        for pred in block.predecessors:
            assert block_id in cfg.blocks[pred].successors
    # Property 3: a forward fixpoint converges well inside its budget.
    result = run_forward(cfg, _CountingAnalysis())
    assert result.converged
    assert result.iterations <= 64 * max(1, len(cfg.blocks))
