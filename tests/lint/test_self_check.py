"""The repo gate: beeslint must be clean over src/ and benchmarks/.

This is the test-suite twin of CI's ``python -m repro lint src/
benchmarks/`` job — a rule regression (or a new violation anywhere in
the pipeline) fails here even when CI config drifts.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_benchmarks_are_beeslint_clean():
    result = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]
    )
    assert not result.errors, [r.error for r in result.errors]
    assert result.findings == (), "\n".join(
        finding.format() for finding in result.findings
    )
    # Sanity: the walk actually visited the pipeline, not an empty dir.
    assert result.files_checked > 100


def test_examples_are_beeslint_clean():
    result = lint_paths([str(REPO_ROOT / "examples")])
    assert not result.errors
    assert result.findings == (), "\n".join(
        finding.format() for finding in result.findings
    )
