"""The SARIF reporter validates against the (vendored) 2.1.0 schema.

The schema in ``data/`` is the subset of the OASIS sarif-schema-2.1.0
covering every property beeslint emits, with ``additionalProperties:
false`` throughout — so both a missing required field and an invented
one fail validation here before a code-scanning upload rejects them.
"""

import json
import os

import jsonschema
import pytest

from repro.lint import (
    LintResult,
    lint_paths,
    lint_source,
    render_sarif,
    resolve_rules,
)
from repro.lint.findings import FileReport


SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "data", "sarif-2.1.0-subset.schema.json"
)

DIRTY_SOURCE = (
    "import threading\n"
    "\n"
    "class Journal:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._events = []\n"
    "\n"
    "    def emit(self, event):\n"
    "        with self._lock:\n"
    "            self._events.append(event)\n"
    "            self._count = len(self._events)\n"
    "\n"
    "    def racy(self):\n"
    "        return self._count\n"
)


@pytest.fixture(scope="module")
def validator():
    with open(SCHEMA_PATH, "r", encoding="utf-8") as handle:
        schema = json.load(handle)
    jsonschema.Draft7Validator.check_schema(schema)
    return jsonschema.Draft7Validator(schema)


def sarif_for(reports):
    return json.loads(render_sarif(LintResult(reports=tuple(reports))))


class TestSchemaValidity:
    def test_empty_run_validates(self, validator):
        document = sarif_for([])
        validator.validate(document)

    def test_run_with_findings_validates(self, validator):
        report = lint_source(
            DIRTY_SOURCE, path="pkg/journal.py",
            rules=resolve_rules(select=["lock-discipline"]),
        )
        assert report.findings  # the fixture must actually fire
        document = sarif_for([report])
        validator.validate(document)

    def test_run_with_file_errors_validates(self, validator):
        broken = FileReport(path="pkg/broken.py", error="syntax error: ugh")
        document = sarif_for([broken])
        validator.validate(document)
        invocation = document["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        notes = invocation["toolConfigurationNotifications"]
        assert notes[0]["message"]["text"] == "syntax error: ugh"

    def test_whole_repo_report_validates(self, validator):
        # End to end over real files: lint this repo's lint package and
        # validate whatever comes out.
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        result = lint_paths([os.path.join(root, "src", "repro", "lint")])
        validator.validate(json.loads(render_sarif(result)))


class TestDocumentShape:
    def test_version_and_schema_pointer(self):
        document = sarif_for([])
        assert document["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in document["$schema"]

    def test_every_registered_rule_is_described(self):
        document = sarif_for([])
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        ids = [descriptor["id"] for descriptor in rules]
        assert ids == sorted(ids)
        assert "BEES109" in ids
        assert "BEES110" in ids
        assert "BEES111" in ids
        for descriptor in rules:
            assert descriptor["shortDescription"]["text"]

    def test_results_cross_reference_the_rule_table(self):
        report = lint_source(
            DIRTY_SOURCE, path="pkg/journal.py",
            rules=resolve_rules(select=["lock-discipline"]),
        )
        document = sarif_for([report])
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            descriptor = rules[result["ruleIndex"]]
            assert result["ruleId"] == descriptor["id"]
            assert descriptor["name"] == "lock-discipline"

    def test_locations_are_one_based(self):
        report = lint_source(
            DIRTY_SOURCE, path="pkg/journal.py",
            rules=resolve_rules(select=["lock-discipline"]),
        )
        document = sarif_for([report])
        for result in document["runs"][0]["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_uris_are_relative_and_forward_slashed(self):
        report = lint_source(
            DIRTY_SOURCE, path=os.path.join("pkg", "journal.py"),
            rules=resolve_rules(select=["lock-discipline"]),
        )
        document = sarif_for([report])
        for result in document["runs"][0]["results"]:
            uri = result["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]["uri"]
            assert "\\" not in uri
            assert uri == "pkg/journal.py"
