"""Forward fixpoint framework tests: joins, loops, budgets.

The framework promises three things to its clients (BEES110/111): path
merges go through the client's value join, loop back-edges re-feed the
header until quiescence, and a non-monotone client trips the budget
flag instead of hanging the linter.
"""

import ast

from repro.lint.flow.cfg import build_cfg
from repro.lint.flow.dataflow import ForwardAnalysis, run_forward


def cfg_of(source):
    tree = ast.parse(source)
    return build_cfg(tree.body[0])


class ConstAnalysis(ForwardAnalysis):
    """Tiny constant propagation: name -> int constant or 'top'."""

    def join_values(self, left, right):
        return left if left == right else "top"

    def transfer(self, block, stmt, state):
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.targets[0], ast.Name
        ):
            new = dict(state)
            value = stmt.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, int
            ):
                new[stmt.targets[0].id] = value.value
            elif isinstance(value, ast.Name):
                new[stmt.targets[0].id] = state.get(value.id, "top")
            else:
                new[stmt.targets[0].id] = "top"
            return new
        return state


class TestForward:
    def test_straight_line_propagation(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = a\n")
        result = run_forward(cfg, ConstAnalysis())
        assert result.converged
        exit_state = result.in_states[cfg.exit]
        assert exit_state["a"] == 1
        assert exit_state["b"] == 1

    def test_branch_join_widens_to_top(self):
        cfg = cfg_of(
            "def f(cond):\n"
            "    if cond:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    b = a\n"
        )
        result = run_forward(cfg, ConstAnalysis())
        assert result.converged
        assert result.in_states[cfg.exit]["b"] == "top"

    def test_branch_join_keeps_agreeing_values(self):
        cfg = cfg_of(
            "def f(cond):\n"
            "    if cond:\n"
            "        a = 7\n"
            "    else:\n"
            "        a = 7\n"
        )
        result = run_forward(cfg, ConstAnalysis())
        assert result.in_states[cfg.exit]["a"] == 7

    def test_one_sided_branch_joins_with_absence(self):
        # A name bound on only one path keeps its value at the merge —
        # absence is bottom, not conflict.
        cfg = cfg_of(
            "def f(cond):\n"
            "    if cond:\n"
            "        a = 3\n"
            "    b = 0\n"
        )
        result = run_forward(cfg, ConstAnalysis())
        assert result.in_states[cfg.exit]["a"] == 3

    def test_loop_reassignment_reaches_fixpoint(self):
        cfg = cfg_of(
            "def f(n):\n"
            "    a = 1\n"
            "    while n:\n"
            "        a = 2\n"
            "    b = a\n"
        )
        result = run_forward(cfg, ConstAnalysis())
        assert result.converged
        # The loop may run zero or more times: 1 join 2 -> top.
        assert result.in_states[cfg.exit]["b"] == "top"

    def test_entry_state_seeds_the_analysis(self):
        class Seeded(ConstAnalysis):
            def entry_state(self, cfg):
                return {"param": 42}

        cfg = cfg_of("def f(param):\n    a = param\n")
        result = run_forward(cfg, Seeded())
        assert result.in_states[cfg.exit]["a"] == 42

    def test_non_monotone_client_trips_budget_not_hang(self):
        class Diverging(ForwardAnalysis):
            def join_values(self, left, right):
                return max(left, right)

            def transfer(self, block, stmt, state):
                # An infinite-height lattice: the loop keeps counting.
                return {"visits": state.get("visits", 0) + 1}

        cfg = cfg_of("def f(n):\n    while n:\n        n = step(n)\n")
        result = run_forward(cfg, Diverging(), max_visits_per_block=4)
        assert not result.converged
        assert result.iterations == 4 * len(cfg.blocks)
