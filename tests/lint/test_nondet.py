"""BEES111 ``nondet-order``: hash-ordered values stay out of journals.

The acceptance shape: a set materialised with ``list()`` and carried
through locals into a ``journal.emit(...)`` payload is flagged, while
the same flow through ``sorted()`` is clean — replay only stays
byte-identical when every payload has a deterministic order.
"""

from repro.lint import lint_source, resolve_rules

RULE = "nondet-order"


def findings_for(source, path="pkg/module.py"):
    report = lint_source(source, path=path, rules=resolve_rules(select=[RULE]))
    assert report.error is None, report.error
    return report.findings


class TestJournalSink:
    def test_set_through_list_into_emit_is_flagged(self):
        source = (
            "def record(journal, image_ids):\n"
            "    ids = set(image_ids)\n"
            "    payload = list(ids)\n"
            "    journal.emit('uploads', ids=payload)\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "journal payload" in findings[0].message
        assert "sorted()" in findings[0].message

    def test_sorted_sanitizes_the_flow(self):
        source = (
            "def record(journal, image_ids):\n"
            "    ids = set(image_ids)\n"
            "    payload = sorted(ids)\n"
            "    journal.emit('uploads', ids=payload)\n"
        )
        assert not findings_for(source)

    def test_set_literal_positional_arg(self):
        source = (
            "def record(journal):\n"
            "    journal.emit('seen', {'a', 'b'})\n"
        )
        assert len(findings_for(source)) == 1

    def test_dict_views_taint_only_over_tainted_receivers(self):
        clean = (
            "def record(journal, table):\n"
            "    journal.emit('sizes', names=list(table.keys()))\n"
        )
        assert not findings_for(clean)

    def test_comprehension_over_a_set_keeps_the_taint(self):
        source = (
            "def record(journal, image_ids):\n"
            "    ids = {i for i in image_ids}\n"
            "    sizes = [len(i) for i in ids]\n"
            "    journal.emit('sizes', sizes=sizes)\n"
        )
        assert len(findings_for(source)) == 1

    def test_accumulation_inside_a_set_loop_taints_the_list(self):
        source = (
            "def record(journal, devices):\n"
            "    order = []\n"
            "    for device in set(devices):\n"
            "        order.append(device)\n"
            "    journal.emit('order', order=order)\n"
        )
        assert len(findings_for(source)) == 1

    def test_loop_over_ordered_input_is_clean(self):
        source = (
            "def record(journal, devices):\n"
            "    order = []\n"
            "    for device in devices:\n"
            "        order.append(device)\n"
            "    journal.emit('order', order=order)\n"
        )
        assert not findings_for(source)


class TestOtherSinks:
    def test_rank_votes_with_set_derived_input(self):
        source = (
            "def decide(candidates):\n"
            "    pool = set(candidates)\n"
            "    return rank_votes(list(pool))\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "rank_votes" in findings[0].message

    def test_fingerprint_callee_with_set_derived_input(self):
        source = (
            "def seal(entries):\n"
            "    keys = set(entries)\n"
            "    return run_fingerprint(list(keys))\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "fingerprint" in findings[0].message.lower()

    def test_float_sum_over_set_derived_iterable(self):
        source = (
            "def total(costs):\n"
            "    spent_joules = set(costs)\n"
            "    return sum(spent_joules)\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "accumulation" in findings[0].message

    def test_int_sum_over_a_set_is_clean(self):
        # Integer addition commutes exactly; no order hazard.
        source = (
            "def total(counts):\n"
            "    seen = set(counts)\n"
            "    return sum(seen)\n"
        )
        assert not findings_for(source)


class TestInterprocedural:
    def test_summary_carries_taint_across_functions(self):
        source = (
            "def unique_ids(image_ids):\n"
            "    return set(image_ids)\n"
            "\n"
            "def record(journal, image_ids):\n"
            "    ids = list(unique_ids(image_ids))\n"
            "    journal.emit('uploads', ids=ids)\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1

    def test_sorting_helper_output_is_clean(self):
        source = (
            "def unique_ids(image_ids):\n"
            "    return set(image_ids)\n"
            "\n"
            "def record(journal, image_ids):\n"
            "    ids = sorted(unique_ids(image_ids))\n"
            "    journal.emit('uploads', ids=ids)\n"
        )
        assert not findings_for(source)

    def test_inline_suppression(self):
        source = (
            "def record(journal, image_ids):\n"
            "    ids = list(set(image_ids))\n"
            "    journal.emit('uploads', ids=ids)  "
            "# beeslint: disable=nondet-order (payload is re-sorted downstream)\n"
        )
        assert not findings_for(source)
