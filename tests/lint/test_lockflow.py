"""BEES109 ``lock-discipline``: seeded races flagged, real code clean.

The acceptance shape from the issue: an unguarded access to an
attribute the class writes under its lock is a finding; a lock-free
read on the fall-through path *around* a ``with`` block is a finding;
and the sharded index — whose hand-rolled ``acquire(blocking=False)``
protocol and documented lock-free reads are deliberate — produces zero
findings without any suppression.
"""

import os

from repro.lint import lint_source, resolve_rules

RULE = "lock-discipline"


def findings_for(source, path="pkg/module.py"):
    report = lint_source(source, path=path, rules=resolve_rules(select=[RULE]))
    assert report.error is None, report.error
    return report.findings


GUARDED_CLASS = """\
import threading

class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = []

    def emit(self, event):
        with self._lock:
            self._events.append(event)
            self._count = len(self._events)
"""


class TestSeededRaces:
    def test_unguarded_read_of_guarded_attr_is_flagged(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def snapshot(self):\n"
            "        return list(self._count for _ in range(1))\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "_count" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_unguarded_write_is_flagged(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def reset(self):\n"
            "        self._count = 0\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert findings[0].rule == RULE

    def test_read_reachable_around_the_with_block_is_flagged(self):
        # The path-sensitivity case: the *fall-through after* the with
        # block is outside the held region even though the method does
        # acquire the lock elsewhere in its body.
        source = GUARDED_CLASS + (
            "\n"
            "    def drain(self):\n"
            "        with self._lock:\n"
            "            batch = list(self._events)\n"
            "        return self._count\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert findings[0].line == source.splitlines().index(
            "        return self._count"
        ) + 1

    def test_early_return_inside_the_lock_is_clean(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def first(self):\n"
            "        with self._lock:\n"
            "            if self._events:\n"
            "                return self._count\n"
            "        return 0\n"
        )
        assert not findings_for(source)


class TestConventions:
    def test_constructor_writes_are_exempt(self):
        # GUARDED_CLASS itself writes self._events in __init__ without
        # the lock; no concurrent peer exists yet.
        assert not findings_for(GUARDED_CLASS)

    def test_locked_helper_is_assumed_held(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def _compact_locked(self):\n"
            "        self._events = self._events[-10:]\n"
            "        self._count = len(self._events)\n"
        )
        assert not findings_for(source)

    def test_calling_locked_helper_without_lock_is_flagged(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def _compact_locked(self):\n"
            "        self._count = 0\n"
            "\n"
            "    def compact(self):\n"
            "        self._compact_locked()\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "_compact_locked" in findings[0].message

    def test_calling_locked_helper_with_lock_is_clean(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def _compact_locked(self):\n"
            "        self._count = 0\n"
            "\n"
            "    def compact(self):\n"
            "        with self._lock:\n"
            "            self._compact_locked()\n"
        )
        assert not findings_for(source)

    def test_manual_acquire_methods_opt_out(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def try_emit(self, event):\n"
            "        if not self._lock.acquire(blocking=False):\n"
            "            return False\n"
            "        try:\n"
            "            self._events.append(event)\n"
            "            self._count = len(self._events)\n"
            "        finally:\n"
            "            self._lock.release()\n"
            "        return True\n"
        )
        assert not findings_for(source)

    def test_lock_collections_match_subscripted_with(self):
        source = """\
import threading

class Sharded:
    def __init__(self, n):
        self._locks = [threading.Lock() for _ in range(n)]
        self._tables = [{} for _ in range(n)]

    def put(self, shard, key, value):
        with self._locks[shard]:
            self._tables[shard][key] = value

    def peek(self, shard, key):
        return self._tables[shard].get(key)
"""
        findings = findings_for(source)
        assert len(findings) == 1
        assert "_tables" in findings[0].message

    def test_lockless_class_is_ignored(self):
        source = """\
class Plain:
    def __init__(self):
        self._items = []

    def add(self, item):
        self._items.append(item)
"""
        assert not findings_for(source)

    def test_inline_suppression_silences_a_deliberate_race(self):
        source = GUARDED_CLASS + (
            "\n"
            "    def racy_len(self):\n"
            "        return self._count  "
            "# beeslint: disable=lock-discipline (GIL-atomic snapshot)\n"
        )
        assert not findings_for(source)


class TestRealCode:
    def repo_file(self, *parts):
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        path = os.path.join(root, *parts)
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read(), path

    def test_sharded_index_has_zero_findings(self):
        # The acceptance bar: the hand-rolled contention-counting lock
        # protocol in the sharded index must produce no false positives
        # (its lock-free reads are deliberate and documented).
        source, path = self.repo_file("src", "repro", "index", "sharded.py")
        assert findings_for(source, path=path) == ()

    def test_kernel_cache_has_zero_findings_after_fix(self):
        source, path = self.repo_file("src", "repro", "kernels", "cache.py")
        assert findings_for(source, path=path) == ()
