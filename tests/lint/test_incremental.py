"""Incremental cache + ``--changed`` scoping.

The contract: a warm rerun serves every unchanged file from the
content-hash cache (no re-analysis — observable through the hit/miss
counters and through findings surviving verbatim), editing a file
invalidates exactly that file for file-local rules, any edit
invalidates everything for whole-program rules (the project digest
covers the interprocedural inputs), and changing the active rule set
never serves stale results (the salt).
"""

import os
import subprocess

from repro.lint import (
    CACHE_DIR_NAME,
    changed_python_files,
    lint_paths,
    resolve_rules,
)

DIRTY = (
    "import threading\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "    def put(self, v):\n"
    "        with self._lock:\n"
    "            self._value = v\n"
    "    def peek(self):\n"
    "        return self._value\n"
)

CLEAN = "def double(n):\n    return n + n\n"


def write_tree(tmp_path, files):
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(tmp_path)


def run(root, cache_root, select=("lock-discipline",)):
    return lint_paths(
        [root],
        rules=resolve_rules(select=list(select)),
        cache_dir=os.path.join(cache_root, CACHE_DIR_NAME),
    )


class TestCache:
    def test_warm_run_is_all_hits_with_identical_findings(self, tmp_path):
        root = write_tree(
            tmp_path / "proj", {"dirty.py": DIRTY, "clean.py": CLEAN}
        )
        cold = run(root, str(tmp_path))
        assert cold.cache_hits == 0
        assert cold.cache_misses == 2
        assert len(cold.findings) == 1
        warm = run(root, str(tmp_path))
        assert warm.cache_hits == 2
        assert warm.cache_misses == 0
        assert warm.findings == cold.findings

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        root = write_tree(
            tmp_path / "proj", {"dirty.py": DIRTY, "clean.py": CLEAN}
        )
        run(root, str(tmp_path))
        (tmp_path / "proj" / "clean.py").write_text(
            "def triple(n):\n    return n + n + n\n"
        )
        rerun = run(root, str(tmp_path))
        assert rerun.cache_hits == 1
        assert rerun.cache_misses == 1
        assert len(rerun.findings) == 1  # dirty.py served from cache

    def test_fixing_the_finding_clears_it_on_rerun(self, tmp_path):
        root = write_tree(tmp_path / "proj", {"dirty.py": DIRTY})
        assert len(run(root, str(tmp_path)).findings) == 1
        fixed = DIRTY.replace(
            "        return self._value\n",
            "        with self._lock:\n            return self._value\n",
        )
        (tmp_path / "proj" / "dirty.py").write_text(fixed)
        assert run(root, str(tmp_path)).findings == ()

    def test_rule_set_change_never_serves_stale_results(self, tmp_path):
        root = write_tree(tmp_path / "proj", {"dirty.py": DIRTY})
        run(root, str(tmp_path), select=("lock-discipline",))
        other = run(root, str(tmp_path), select=("unit-flow",))
        assert other.cache_hits == 0  # different salt, no crosstalk
        assert other.findings == ()

    def test_project_rules_invalidate_on_any_edit(self, tmp_path):
        # unit-flow summaries cross file boundaries, so editing *any*
        # file must re-analyze every file (the project digest).
        root = write_tree(
            tmp_path / "proj",
            {
                "helper.py": (
                    "def measure(payload):\n"
                    "    sent_bytes = len(payload)\n"
                    "    return sent_bytes\n"
                ),
                "user.py": (
                    "from helper import measure\n"
                    "def drain(payload, battery_joules):\n"
                    "    return measure(payload) + battery_joules\n"
                ),
            },
        )
        cold = run(root, str(tmp_path), select=("unit-flow",))
        assert len(cold.findings) == 1
        (tmp_path / "proj" / "helper.py").write_text(
            "def measure(payload):\n"
            "    spent_joules = 0.5 * len(payload)\n"
            "    return spent_joules\n"
        )
        rerun = run(root, str(tmp_path), select=("unit-flow",))
        assert rerun.cache_hits == 0  # project digest changed
        assert rerun.findings == ()  # joules + joules is now fine

    def test_file_local_rules_ignore_sibling_edits(self, tmp_path):
        # lock-discipline is file-local, so a sibling edit must NOT
        # invalidate an untouched file's entry.
        root = write_tree(
            tmp_path / "proj", {"dirty.py": DIRTY, "clean.py": CLEAN}
        )
        run(root, str(tmp_path))
        (tmp_path / "proj" / "clean.py").write_text("x = 1\n")
        rerun = run(root, str(tmp_path))
        assert rerun.cache_hits == 1

    def test_cache_file_is_inside_the_named_directory(self, tmp_path):
        root = write_tree(tmp_path / "proj", {"clean.py": CLEAN})
        run(root, str(tmp_path))
        assert (tmp_path / CACHE_DIR_NAME / "cache.json").is_file()

    def test_uncached_runs_report_zero_counters(self, tmp_path):
        root = write_tree(tmp_path / "proj", {"clean.py": CLEAN})
        result = lint_paths(
            [root], rules=resolve_rules(select=["lock-discipline"])
        )
        assert result.cache_hits == 0
        assert result.cache_misses == 0


class TestChanged:
    def git(self, cwd, *argv):
        subprocess.run(
            ["git", *argv],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                **os.environ,
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
            },
        )

    def test_only_files_differing_from_head_are_listed(self, tmp_path):
        root = write_tree(
            tmp_path, {"a.py": CLEAN, "b.py": CLEAN, "note.txt": "hi\n"}
        )
        self.git(root, "init", "-q")
        self.git(root, "add", ".")
        self.git(root, "commit", "-q", "-m", "seed")
        (tmp_path / "b.py").write_text("x = 2\n")  # modified
        (tmp_path / "c.py").write_text("y = 3\n")  # untracked
        here = os.getcwd()
        os.chdir(root)
        try:
            changed = changed_python_files(["."])
        finally:
            os.chdir(here)
        names = sorted(os.path.basename(path) for path in changed)
        assert names == ["b.py", "c.py"]
