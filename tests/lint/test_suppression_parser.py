"""Suppression-directive parsing: multi-slug lists, never silent wildcards.

The regression this pins: ``disable=`` with nothing (or only garbage)
after the ``=`` used to fall back to the ``*`` wildcard — a typo'd
directive silently suppressed *every* rule on the line.  Now a
directive with ``=`` suppresses exactly the valid keys it names, which
may be none.
"""

from repro.lint.findings import Finding
from repro.lint.suppression import parse_suppressions

ALIASES = {
    "seeded-rng": "seeded-rng",
    "BEES103": "seeded-rng",
    "unit-suffix": "unit-suffix",
    "BEES102": "unit-suffix",
    "lock-discipline": "lock-discipline",
    "BEES109": "lock-discipline",
}


def finding(rule, line=1):
    return Finding(path="m.py", line=line, col=0, rule=rule, message="x")


def suppressed(source, rule, line=1):
    table = parse_suppressions(source)
    return table.suppresses(finding(rule, line), ALIASES)


class TestMultiSlug:
    def test_two_slugs_comma_separated(self):
        source = "x = 1  # beeslint: disable=seeded-rng,unit-suffix\n"
        assert suppressed(source, "seeded-rng")
        assert suppressed(source, "unit-suffix")
        assert not suppressed(source, "lock-discipline")

    def test_spaces_around_commas(self):
        source = "x = 1  # beeslint: disable=seeded-rng , unit-suffix\n"
        assert suppressed(source, "seeded-rng")
        assert suppressed(source, "unit-suffix")

    def test_mixed_slugs_and_codes(self):
        source = "x = 1  # beeslint: disable=BEES103,lock-discipline\n"
        assert suppressed(source, "seeded-rng")
        assert suppressed(source, "lock-discipline")

    def test_per_entry_justifications_are_ignored(self):
        source = (
            "x = 1  # beeslint: disable=seeded-rng (fixture), "
            "unit-suffix (score blend)\n"
        )
        assert suppressed(source, "seeded-rng")
        assert suppressed(source, "unit-suffix")

    def test_three_slugs(self):
        source = (
            "x = 1  # beeslint: disable=seeded-rng,unit-suffix,BEES109\n"
        )
        for rule in ("seeded-rng", "unit-suffix", "lock-discipline"):
            assert suppressed(source, rule)


class TestNoSilentWildcard:
    def test_empty_rule_list_suppresses_nothing(self):
        source = "x = 1  # beeslint: disable=\n"
        assert not suppressed(source, "seeded-rng")
        assert not suppressed(source, "unit-suffix")

    def test_garbage_after_equals_suppresses_nothing(self):
        source = "x = 1  # beeslint: disable=(just a note)\n"
        assert not suppressed(source, "seeded-rng")

    def test_only_commas_suppress_nothing(self):
        source = "x = 1  # beeslint: disable=, ,\n"
        assert not suppressed(source, "seeded-rng")

    def test_invalid_entries_do_not_poison_valid_ones(self):
        source = "x = 1  # beeslint: disable=???,seeded-rng\n"
        assert suppressed(source, "seeded-rng")
        assert not suppressed(source, "unit-suffix")

    def test_uppercase_slug_is_not_a_key(self):
        source = "x = 1  # beeslint: disable=Seeded-Rng\n"
        assert not suppressed(source, "seeded-rng")

    def test_bare_disable_still_means_everything(self):
        source = "x = 1  # beeslint: disable\n"
        assert suppressed(source, "seeded-rng")
        assert suppressed(source, "lock-discipline")

    def test_disable_file_with_empty_list_suppresses_nothing(self):
        source = "# beeslint: disable-file=\nx = 1\n"
        assert not suppressed(source, "seeded-rng", line=2)

    def test_disable_file_with_slugs_applies_everywhere(self):
        source = "# beeslint: disable-file=seeded-rng\nx = 1\ny = 2\n"
        assert suppressed(source, "seeded-rng", line=3)
        assert not suppressed(source, "unit-suffix", line=3)

    def test_unknown_verb_is_not_a_directive(self):
        source = "x = 1  # beeslint: enable=seeded-rng\n"
        assert not suppressed(source, "seeded-rng")

    def test_directive_inside_string_is_ignored(self):
        source = 's = "# beeslint: disable"\n'
        assert not suppressed(source, "seeded-rng")
