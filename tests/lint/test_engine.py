"""Engine-level beeslint tests: suppression, selection, reporting."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    LintResult,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    render_console,
    render_json,
    resolve_rules,
)


class TestSuppression:
    def test_inline_disable_by_slug(self):
        source = "import random  # beeslint: disable=seeded-rng\n"
        assert not lint_source(source).findings

    def test_inline_disable_by_code(self):
        source = "import random  # beeslint: disable=BEES103\n"
        assert not lint_source(source).findings

    def test_bare_disable_silences_every_rule_on_line(self):
        source = "energy_j = interval_s = 1  # beeslint: disable\n"
        assert not lint_source(source).findings

    def test_disable_with_justification(self):
        source = (
            "import random  "
            "# beeslint: disable=seeded-rng (fixture needs the stdlib module)\n"
        )
        assert not lint_source(source).findings

    def test_file_wide_disable(self):
        source = (
            "# beeslint: disable-file=seeded-rng\n"
            "import random\n"
            "from random import choice\n"
        )
        assert not lint_source(source).findings

    def test_suppression_is_line_scoped(self):
        source = (
            "import random  # beeslint: disable=seeded-rng\n"
            "from random import choice\n"
        )
        findings = lint_source(source).findings
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_other_rules_still_fire_on_suppressed_line(self):
        source = "energy_j = 1  # beeslint: disable=seeded-rng\n"
        findings = lint_source(source).findings
        assert [f.rule for f in findings] == ["unit-suffix"]

    def test_directive_in_string_is_ignored(self):
        source = (
            'note = "beeslint: disable=seeded-rng"\n'
            "import random\n"
        )
        findings = lint_source(source).findings
        assert [f.rule for f in findings] == ["seeded-rng"]


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="bad.py")
        assert report.error is not None
        assert "syntax error" in report.error
        result = LintResult(reports=(report,))
        assert not result.ok
        assert result.errors == (report,)

    def test_clean_source_is_ok(self):
        report = lint_source("sent_bytes = 1\n")
        assert report.ok
        assert not report.findings

    def test_findings_sorted_by_path_and_line(self):
        source = "from random import choice\nimport random\n"
        findings = lint_source(source).findings
        assert [f.line for f in findings] == [1, 2]

    def test_lint_paths_over_tmp_tree(self, tmp_path):
        (tmp_path / "good.py").write_text("sent_bytes = 1\n")
        (tmp_path / "bad.py").write_text("import random\n")
        pycache = tmp_path / "__pycache__"
        pycache.mkdir()
        (pycache / "skipped.py").write_text("import random\n")
        result = lint_paths([str(tmp_path)])
        assert result.files_checked == 2
        assert [f.rule for f in result.findings] == ["seeded-rng"]

    def test_missing_path_raises(self):
        with pytest.raises(ConfigurationError):
            lint_paths(["definitely/not/a/path"])

    def test_iter_python_files_dedups(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        files = list(iter_python_files([str(target), str(tmp_path)]))
        assert files == [os.path.normpath(str(target))]


class TestSelection:
    def test_all_rules_have_unique_names_and_codes(self):
        rules = all_rules()
        assert len(rules) == 11
        assert len({r.name for r in rules}) == 11
        assert len({r.code for r in rules}) == 11
        assert all(r.code.startswith("BEES") for r in rules)
        assert all(r.summary for r in rules)

    def test_select_narrows_to_one_rule(self):
        rules = resolve_rules(select=["BEES103"])
        assert [r.name for r in rules] == ["seeded-rng"]

    def test_ignore_removes_a_rule(self):
        rules = resolve_rules(ignore=["unit-suffix"])
        assert "unit-suffix" not in {r.name for r in rules}
        assert len(rules) == 10

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_rules(select=["no-such-rule"])


class TestReporters:
    def _result(self):
        return LintResult(reports=(lint_source("import random\n", "mod.py"),))

    def test_console_lists_findings_and_summary(self):
        text = render_console(self._result())
        assert "mod.py:1:" in text
        assert "[seeded-rng]" in text
        assert "beeslint: 1 finding" in text

    def test_json_is_parseable_and_structured(self):
        payload = json.loads(render_json(self._result()))
        assert payload["tool"] == "beeslint"
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "seeded-rng"
        assert finding["path"] == "mod.py"
        assert finding["line"] == 1

    def test_clean_result_renders_ok(self):
        clean = LintResult(reports=(lint_source("x = 1\n"),))
        assert "0 findings" in render_console(clean)
        assert json.loads(render_json(clean))["ok"] is True
