"""BEES110 ``unit-flow``: dimensional analysis through real dataflow.

The seeded acceptance case: bytes and joules meeting across a function
boundary — a neutrally-named helper whose *return value* carries a unit
only a summary can know — must be flagged; the same arithmetic with
``sorted`` suffixes everywhere stays BEES102's finding, not ours.
"""

from repro.lint import lint_source, resolve_rules

RULE = "unit-flow"


def findings_for(source, path="pkg/module.py"):
    report = lint_source(source, path=path, rules=resolve_rules(select=[RULE]))
    assert report.error is None, report.error
    return report.findings


class TestFlowMixes:
    def test_unit_flows_through_assignment_into_a_mix(self):
        source = (
            "def f(sent_bytes, battery_joules):\n"
            "    total = sent_bytes\n"
            "    return total + battery_joules\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "'bytes'" in findings[0].message
        assert "'joules'" in findings[0].message

    def test_cross_function_boundary_via_summary(self):
        # The issue's seeded case: measure() is neutral by name, but
        # its body returns a byte count; only the interprocedural
        # summary can see the bytes+joules mix at the call site.
        source = (
            "def measure(payload):\n"
            "    sent_bytes = len(payload)\n"
            "    return sent_bytes\n"
            "\n"
            "def drain(payload, battery_joules):\n"
            "    return measure(payload) + battery_joules\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "'bytes'" in findings[0].message

    def test_summary_chain_through_two_helpers(self):
        source = (
            "def inner(payload):\n"
            "    size_bytes = len(payload)\n"
            "    return size_bytes\n"
            "\n"
            "def outer(payload):\n"
            "    return inner(payload)\n"
            "\n"
            "def use(payload, cost_joules):\n"
            "    return outer(payload) + cost_joules\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1

    def test_purely_syntactic_mix_is_left_to_bees102(self):
        source = (
            "def f(sent_bytes, battery_joules):\n"
            "    return sent_bytes + battery_joules\n"
        )
        assert not findings_for(source)

    def test_same_unit_arithmetic_is_clean(self):
        source = (
            "def f(header_bytes, body_bytes):\n"
            "    total = header_bytes\n"
            "    return total + body_bytes\n"
        )
        assert not findings_for(source)

    def test_multiplication_clears_the_dimension(self):
        # joules = watts * seconds style derivations must not flag.
        source = (
            "def f(power, interval_seconds, battery_joules):\n"
            "    spent = power * interval_seconds\n"
            "    return battery_joules - spent\n"
        )
        assert not findings_for(source)

    def test_path_dependent_unit_joins_to_unknown(self):
        source = (
            "def f(cond, sent_bytes, battery_joules):\n"
            "    value = sent_bytes if cond else battery_joules\n"
            "    return value + sent_bytes\n"
        )
        assert not findings_for(source)

    def test_comparison_mix_through_flow_is_flagged(self):
        source = (
            "def f(sent_bytes, budget_joules):\n"
            "    used = sent_bytes\n"
            "    if used > budget_joules:\n"
            "        return True\n"
            "    return False\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "comparison" in findings[0].message


class TestDeclarationSites:
    def test_assignment_into_differently_suffixed_name(self):
        source = (
            "def f(battery_joules):\n"
            "    level = battery_joules\n"
            "    drained_bytes = level\n"
            "    return drained_bytes\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "drained_bytes" in findings[0].message

    def test_return_against_function_suffix(self):
        source = (
            "def cost_joules(sent_bytes):\n"
            "    total = sent_bytes\n"
            "    return total\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "'joules'" in findings[0].message

    def test_keyword_argument_unit_mismatch(self):
        source = (
            "def f(emit, battery_joules):\n"
            "    spent = battery_joules\n"
            "    emit(size_bytes=spent)\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "size_bytes" in findings[0].message

    def test_positional_argument_against_resolved_signature(self):
        source = (
            "def record(size_bytes):\n"
            "    return size_bytes\n"
            "\n"
            "def f(battery_joules):\n"
            "    level = battery_joules\n"
            "    record(level)\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1
        assert "size_bytes" in findings[0].message

    def test_preserving_builtins_keep_the_unit(self):
        source = (
            "def f(counts):\n"
            "    sizes_bytes = counts\n"
            "    total = sum(sizes_bytes)\n"
            "    limit_joules = 5.0\n"
            "    return total + limit_joules\n"
        )
        findings = findings_for(source)
        assert len(findings) == 1

    def test_inline_suppression(self):
        source = (
            "def f(sent_bytes, battery_joules):\n"
            "    total = sent_bytes\n"
            "    return total + battery_joules  "
            "# beeslint: disable=unit-flow (score blend, unitless by design)\n"
        )
        assert not findings_for(source)
