"""Per-rule beeslint tests: one trigger and one non-trigger per rule.

Every rule gets at least one fixture that must produce a finding and
one that must stay clean, so a rule that silently stops firing (or
starts over-firing) breaks here before it breaks the repo gate.
"""

import pytest

from repro.lint import lint_source, resolve_rules


def findings_for(source, rule, path="pkg/module.py"):
    """Findings of one rule over an in-memory module."""
    report = lint_source(source, path=path, rules=resolve_rules(select=[rule]))
    assert report.error is None, report.error
    return report.findings


class TestPaperConstants:
    def test_flags_quality_proportion_literal(self):
        findings = findings_for("QUALITY = 0.85\n", "paper-constants")
        assert len(findings) == 1
        assert "0.85" in findings[0].message
        assert findings[0].rule == "paper-constants"

    @pytest.mark.parametrize("value", ["0.013", "0.006", "0.019"])
    def test_flags_edr_constants(self, value):
        findings = findings_for(f"t = {value}\n", "paper-constants")
        assert len(findings) == 1

    def test_flags_linear_policy_from_literals(self):
        source = "p = LinearPolicy(0.4, -0.4)\n"
        findings = findings_for(source, "paper-constants")
        assert len(findings) == 1
        assert "LinearPolicy" in findings[0].message

    def test_allows_literals_in_config_module(self):
        source = "DEFAULT_QUALITY_PROPORTION = 0.85\n"
        assert not findings_for(
            source, "paper-constants", path="src/repro/core/config.py"
        )

    def test_allows_literals_in_policies_module(self):
        source = "T = LinearPolicy(0.013, 0.006)\n"
        assert not findings_for(
            source, "paper-constants", path="src/repro/core/policies.py"
        )

    def test_allows_unprotected_floats(self):
        assert not findings_for("x = 0.5\ny = 0.2\n", "paper-constants")

    def test_allows_imported_constant_use(self):
        source = (
            "from repro.core.config import DEFAULT_QUALITY_PROPORTION\n"
            "q = DEFAULT_QUALITY_PROPORTION\n"
        )
        assert not findings_for(source, "paper-constants")


class TestUnitSuffix:
    @pytest.mark.parametrize(
        "identifier", ["energy_j", "interval_s", "wall_sec", "total_byte"]
    )
    def test_flags_abbreviated_suffixes(self, identifier):
        findings = findings_for(f"{identifier} = 1\n", "unit-suffix")
        assert len(findings) == 1
        assert identifier in findings[0].message

    def test_flags_unit_prefix(self):
        findings = findings_for("bytes_sent = 3\n", "unit-suffix")
        assert len(findings) == 1
        assert "prefix" in findings[0].message

    def test_flags_mixed_unit_addition(self):
        source = "total = a_joules + b_seconds\n"
        findings = findings_for(source, "unit-suffix")
        assert len(findings) == 1
        assert "mixes units" in findings[0].message

    def test_flags_mixed_unit_comparison(self):
        findings = findings_for("ok = a_joules < b_bytes\n", "unit-suffix")
        assert len(findings) == 1

    def test_allows_canonical_suffixes(self):
        source = "sent_bytes = 1\ntotal_joules = 2.0\nwall_seconds = 0.5\n"
        assert not findings_for(source, "unit-suffix")

    def test_allows_rates_with_per(self):
        assert not findings_for("bytes_per_second = 8\n", "unit-suffix")

    def test_allows_same_unit_arithmetic(self):
        source = "total_joules = cpu_joules + radio_joules\n"
        assert not findings_for(source, "unit-suffix")


class TestSeededRng:
    def test_flags_stdlib_random_import(self):
        findings = findings_for("import random\n", "seeded-rng")
        assert len(findings) == 1

    def test_flags_stdlib_random_from_import(self):
        findings = findings_for("from random import choice\n", "seeded-rng")
        assert len(findings) == 1

    def test_flags_legacy_np_random_call(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        findings = findings_for(source, "seeded-rng")
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message

    def test_flags_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = findings_for(source, "seeded-rng")
        assert len(findings) == 1
        assert "seed" in findings[0].message

    def test_allows_seeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert not findings_for(source, "seeded-rng")

    def test_allows_generator_methods(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.random()\n"
        )
        assert not findings_for(source, "seeded-rng")


class TestFloatEquality:
    def test_flags_nonintegral_float_literal(self):
        findings = findings_for("ok = x == 0.25\n", "float-equality")
        assert len(findings) == 1
        assert "0.25" in findings[0].message

    def test_flags_semantic_identifier(self):
        findings = findings_for("hit = similarity == best\n", "float-equality")
        assert len(findings) == 1
        assert "similarity" in findings[0].message

    def test_flags_attribute_threshold(self):
        findings = findings_for(
            "same = value != self.threshold\n", "float-equality"
        )
        assert len(findings) == 1

    def test_allows_integer_equality(self):
        assert not findings_for("done = count == 0\n", "float-equality")

    def test_allows_integral_float_literal(self):
        assert not findings_for("full = charge == 1.0\n", "float-equality")

    def test_allows_ordered_comparison(self):
        assert not findings_for(
            "redundant = similarity > threshold\n", "float-equality"
        )


class TestObsCoverage:
    def test_flags_scheme_without_observe_batch(self):
        source = (
            "class Broken(SharingScheme):\n"
            "    def process_batch(self, device, server, batch):\n"
            "        return 1\n"
        )
        findings = findings_for(source, "obs-coverage")
        assert len(findings) == 1
        assert "observe_batch" in findings[0].message

    def test_allows_scheme_routing_through_observe_batch(self):
        source = (
            "class Fine(SharingScheme):\n"
            "    def process_batch(self, device, server, batch):\n"
            "        return self.observe_batch(report)\n"
        )
        assert not findings_for(source, "obs-coverage")

    def test_allows_abstract_process_batch(self):
        source = (
            "import abc\n"
            "class Base(SharingScheme):\n"
            "    @abc.abstractmethod\n"
            "    def process_batch(self, device, server, batch):\n"
            "        ...\n"
        )
        assert not findings_for(source, "obs-coverage")

    def test_flags_bench_module_missing_contract(self):
        source = "def run(params):\n    return {}\n"
        findings = findings_for(
            source, "obs-coverage", path="benchmarks/bench_broken.py"
        )
        assert len(findings) == 1
        assert "QUICK_PARAMS" in findings[0].message

    def test_allows_complete_bench_module(self):
        source = (
            "PARAMS = {}\n"
            "QUICK_PARAMS = {}\n"
            "def run(params):\n"
            "    return {}\n"
        )
        assert not findings_for(
            source, "obs-coverage", path="benchmarks/bench_fine.py"
        )

    def test_contract_only_applies_to_bench_modules(self):
        assert not findings_for("x = 1\n", "obs-coverage", path="pkg/util.py")


class TestEbatRange:
    def test_flags_raw_arithmetic_on_ebat(self):
        source = "def policy(ebat):\n    return 0.4 - 0.4 * ebat\n"
        findings = findings_for(source, "ebat-range")
        assert len(findings) == 1
        assert "ebat" in findings[0].message

    def test_allows_asserted_ebat(self):
        source = (
            "def policy(ebat):\n"
            "    assert 0.0 <= ebat <= 1.0\n"
            "    return 0.4 - 0.4 * ebat\n"
        )
        assert not findings_for(source, "ebat-range")

    def test_allows_clamped_ebat(self):
        source = (
            "def policy(ebat):\n"
            "    ebat = min(1.0, max(0.0, ebat))\n"
            "    return 0.4 - 0.4 * ebat\n"
        )
        assert not findings_for(source, "ebat-range")

    def test_allows_delegated_ebat(self):
        source = "def wrap(self, ebat):\n    return self.policy(ebat)\n"
        assert not findings_for(source, "ebat-range")

    def test_ignores_functions_without_ebat(self):
        assert not findings_for("def f(x):\n    return 2 * x\n", "ebat-range")


class TestRawTiming:
    def test_flags_direct_clock_delta(self):
        source = (
            "import time\n"
            "t0 = time.perf_counter()\n"
            "elapsed = time.perf_counter() - t0\n"
        )
        findings = findings_for(source, "raw-timing")
        assert len(findings) == 1
        assert findings[0].rule == "raw-timing"

    @pytest.mark.parametrize(
        "clock", ["time.time", "time.monotonic", "time.process_time"]
    )
    def test_flags_every_clock(self, clock):
        source = f"import time\nstart = {clock}()\nd = {clock}() - start\n"
        assert len(findings_for(source, "raw-timing")) == 1

    def test_flags_bare_perf_counter_import(self):
        source = (
            "from time import perf_counter\n"
            "t0 = perf_counter()\n"
            "dt = perf_counter() - t0\n"
        )
        assert len(findings_for(source, "raw-timing")) == 1

    def test_flags_delta_via_keyword_assigned_name(self):
        source = (
            "import time\n"
            "def f(_t0=time.perf_counter()):\n"
            "    return time.perf_counter() - _t0\n"
        )
        assert len(findings_for(source, "raw-timing")) == 1

    def test_allows_non_clock_subtraction(self):
        assert not findings_for("a = 5\nb = a - 3\n", "raw-timing")

    def test_allows_clock_read_without_delta(self):
        source = "import time\nstamp = time.time()\n"
        assert not findings_for(source, "raw-timing")

    def test_line_suppression_is_honoured(self):
        source = (
            "import time\n"
            "t0 = time.perf_counter()\n"
            "d = time.perf_counter() - t0"
            "  # beeslint: disable=raw-timing (this IS the helper)\n"
        )
        assert not findings_for(source, "raw-timing")

    def test_file_suppression_is_honoured(self):
        source = (
            "# beeslint: disable-file=raw-timing (timing module)\n"
            "import time\n"
            "t0 = time.perf_counter()\n"
            "d = time.perf_counter() - t0\n"
        )
        assert not findings_for(source, "raw-timing")

    def test_docstring_mention_does_not_suppress(self):
        source = (
            '"""beeslint: disable-file=raw-timing (not a comment)."""\n'
            "import time\n"
            "t0 = time.perf_counter()\n"
            "d = time.perf_counter() - t0\n"
        )
        assert len(findings_for(source, "raw-timing")) == 1


class TestMissingJournalEvent:
    ARD_PATH = "src/repro/core/ard.py"

    def test_flags_verdict_function_without_emit(self):
        source = (
            "def decide(self, features) -> CbrdDecision:\n"
            "    return CbrdDecision(redundant=False)\n"
        )
        findings = findings_for(source, "missing-journal-event", path=self.ARD_PATH)
        assert len(findings) == 1
        assert "decide" in findings[0].message
        assert "CbrdDecision" in findings[0].message

    def test_allows_direct_emit(self):
        source = (
            "def decide(self, features) -> CbrdDecision:\n"
            "    journal.emit('cbrd.verdict', redundant=False)\n"
            "    return CbrdDecision(redundant=False)\n"
        )
        assert not findings_for(
            source, "missing-journal-event", path=self.ARD_PATH
        )

    def test_allows_transitive_emit_through_funnel(self):
        source = (
            "def decide(self, features) -> CbrdDecision:\n"
            "    return self._classify(features)\n"
            "def _classify(self, features) -> CbrdDecision:\n"
            "    return self._emit(CbrdDecision(redundant=False))\n"
            "def _emit(self, decision) -> CbrdDecision:\n"
            "    get_journal().emit('cbrd.verdict')\n"
            "    return decision\n"
        )
        assert not findings_for(
            source, "missing-journal-event", path=self.ARD_PATH
        )

    def test_string_annotation_counts_as_decision_site(self):
        source = (
            'def decide_batch(self, sets) -> "list[CbrdDecision]":\n'
            "    return []\n"
        )
        findings = findings_for(source, "missing-journal-event", path=self.ARD_PATH)
        assert len(findings) == 1

    def test_ignores_non_target_modules(self):
        source = (
            "def decide(self, features) -> CbrdDecision:\n"
            "    return CbrdDecision(redundant=False)\n"
        )
        assert not findings_for(
            source, "missing-journal-event", path="src/repro/core/client.py"
        )

    def test_flags_policy_call_without_emit(self):
        source = (
            "class LinearPolicy:\n"
            "    def __call__(self, ebat: float) -> float:\n"
            "        return self.intercept + self.slope * ebat\n"
        )
        findings = findings_for(
            source, "missing-journal-event", path="src/repro/core/policies.py"
        )
        assert len(findings) == 1
        assert "LinearPolicy.__call__" in findings[0].message

    def test_allows_non_policy_dunder_call(self):
        source = (
            "class Formatter:\n"
            "    def __call__(self, value: float) -> float:\n"
            "        return value\n"
        )
        assert not findings_for(
            source, "missing-journal-event", path="src/repro/core/policies.py"
        )

    def test_flags_dtn_step_without_emit(self):
        source = (
            "class EpidemicSimulation:\n"
            "    def step(self) -> None:\n"
            "        self.transmissions += 1\n"
        )
        findings = findings_for(
            source, "missing-journal-event", path="src/repro/dtn/routing.py"
        )
        assert len(findings) == 1
        assert "step" in findings[0].message

    def test_abstract_sites_are_exempt(self):
        source = (
            "import abc\n"
            "class Ard(abc.ABC):\n"
            "    @abc.abstractmethod\n"
            "    def decide(self, features) -> CbrdDecision: ...\n"
        )
        assert not findings_for(
            source, "missing-journal-event", path=self.ARD_PATH
        )

    def test_suppression_is_honoured(self):
        source = (
            "def decide(self, features) -> CbrdDecision:"
            "  # beeslint: disable=missing-journal-event (fixture)\n"
            "    return CbrdDecision(redundant=False)\n"
        )
        assert not findings_for(
            source, "missing-journal-event", path=self.ARD_PATH
        )
