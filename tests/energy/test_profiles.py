"""Tests for device profiles."""

import pytest

from repro.energy.profiles import DEFAULT_PROFILE, HELIO_X10_BATTERY_JOULES, DeviceProfile
from repro.errors import EnergyError


class TestProfile:
    def test_battery_capacity_matches_paper_hardware(self):
        # 3150 mAh * 3.8 V.
        assert HELIO_X10_BATTERY_JOULES == pytest.approx(43092.0)
        assert DEFAULT_PROFILE.battery_capacity_joules == HELIO_X10_BATTERY_JOULES

    def test_rate_lookup(self):
        assert DEFAULT_PROFILE.rate_for("orb") > DEFAULT_PROFILE.rate_for("sift")

    def test_pca_sift_slower_than_sift(self):
        assert DEFAULT_PROFILE.rate_for("pca-sift") < DEFAULT_PROFILE.rate_for("sift")

    def test_unknown_kind_rejected(self):
        with pytest.raises(EnergyError):
            DEFAULT_PROFILE.rate_for("surf")

    def test_rejects_bad_capacity(self):
        with pytest.raises(EnergyError):
            DeviceProfile(battery_capacity_joules=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(EnergyError):
            DeviceProfile(extraction_rate={"orb": -1.0})

    def test_rejects_negative_baseline(self):
        with pytest.raises(EnergyError):
            DeviceProfile(baseline_power_w=-0.1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PROFILE.cpu_power_w = 5.0
