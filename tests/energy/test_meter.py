"""Tests for the energy meter ledger."""

import pytest

from repro.energy.meter import FEATURE_EXTRACTION, IMAGE_UPLOAD, EnergyMeter
from repro.errors import EnergyError


class TestRecording:
    def test_accumulates_by_category(self):
        meter = EnergyMeter()
        meter.record(FEATURE_EXTRACTION, 5.0)
        meter.record(FEATURE_EXTRACTION, 3.0)
        assert meter.get(FEATURE_EXTRACTION) == 8.0

    def test_total(self):
        meter = EnergyMeter()
        meter.record(FEATURE_EXTRACTION, 5.0)
        meter.record(IMAGE_UPLOAD, 7.0)
        assert meter.total_joules == 12.0

    def test_unknown_category_zero(self):
        assert EnergyMeter().get("whatever") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(EnergyError):
            EnergyMeter().record(IMAGE_UPLOAD, -1.0)

    def test_rejects_empty_category(self):
        with pytest.raises(EnergyError):
            EnergyMeter().record("", 1.0)

    def test_by_category_is_copy(self):
        meter = EnergyMeter()
        meter.record(IMAGE_UPLOAD, 1.0)
        snapshot = meter.by_category()
        snapshot[IMAGE_UPLOAD] = 99.0
        assert meter.get(IMAGE_UPLOAD) == 1.0


class TestSnapshots:
    def test_since_reports_delta(self):
        meter = EnergyMeter()
        meter.record(IMAGE_UPLOAD, 5.0)
        snap = meter.snapshot()
        meter.record(IMAGE_UPLOAD, 2.0)
        meter.record(FEATURE_EXTRACTION, 1.0)
        delta = meter.since(snap)
        assert delta == {IMAGE_UPLOAD: 2.0, FEATURE_EXTRACTION: 1.0}

    def test_since_empty_when_nothing_recorded(self):
        meter = EnergyMeter()
        snap = meter.snapshot()
        assert meter.since(snap) == {}

    def test_reset(self):
        meter = EnergyMeter()
        meter.record(IMAGE_UPLOAD, 5.0)
        meter.reset()
        assert meter.total_joules == 0.0
