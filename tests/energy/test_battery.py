"""Tests for the battery model."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.battery import Battery
from repro.errors import EnergyError


class TestConstruction:
    def test_starts_full_by_default(self):
        battery = Battery(capacity_joules=100.0)
        assert battery.ebat == 1.0

    def test_explicit_remaining(self):
        battery = Battery(capacity_joules=100.0, remaining_joules=25.0)
        assert battery.ebat == 0.25

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(EnergyError):
            Battery(capacity_joules=0.0)

    def test_rejects_overfull(self):
        with pytest.raises(EnergyError):
            Battery(capacity_joules=100.0, remaining_joules=150.0)


class TestDrain:
    def test_drain_reduces_charge(self):
        battery = Battery(capacity_joules=100.0)
        assert battery.drain(30.0) == 30.0
        assert battery.remaining_joules == pytest.approx(70.0)

    def test_overdrain_clamps_and_reports(self):
        battery = Battery(capacity_joules=100.0, remaining_joules=10.0)
        assert battery.drain(25.0) == 10.0
        assert battery.is_empty

    def test_drain_empty_battery_is_noop(self):
        battery = Battery(capacity_joules=100.0, remaining_joules=0.0)
        assert battery.drain(5.0) == 0.0

    def test_rejects_negative_drain(self):
        with pytest.raises(EnergyError):
            Battery(capacity_joules=100.0).drain(-1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=20))
    def test_accounting_balances(self, drains):
        battery = Battery(capacity_joules=100.0)
        total = sum(battery.drain(amount) for amount in drains)
        assert total + battery.remaining_joules == pytest.approx(100.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=20))
    def test_ebat_never_negative(self, drains):
        battery = Battery(capacity_joules=100.0)
        for amount in drains:
            battery.drain(amount)
            assert 0.0 <= battery.ebat <= 1.0


class TestQueries:
    def test_can_supply(self):
        battery = Battery(capacity_joules=100.0, remaining_joules=40.0)
        assert battery.can_supply(40.0)
        assert not battery.can_supply(41.0)

    def test_can_supply_rejects_negative(self):
        with pytest.raises(EnergyError):
            Battery(capacity_joules=100.0).can_supply(-1.0)

    def test_recharge(self):
        battery = Battery(capacity_joules=100.0, remaining_joules=0.0)
        battery.recharge(0.5)
        assert battery.ebat == pytest.approx(0.5)

    def test_recharge_rejects_bad_fraction(self):
        with pytest.raises(EnergyError):
            Battery(capacity_joules=100.0).recharge(1.5)
