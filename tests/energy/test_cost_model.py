"""Tests for the energy/time cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.cost_model import EnergyCostModel, WorkCost, ZERO_COST
from repro.errors import EnergyError

MODEL = EnergyCostModel()


class TestWorkCost:
    def test_addition(self):
        total = WorkCost(1.0, 2.0) + WorkCost(3.0, 4.0)
        assert total.seconds == 4.0
        assert total.joules == 6.0

    def test_zero_cost(self):
        assert ZERO_COST.seconds == 0.0
        assert ZERO_COST.joules == 0.0


class TestExtractionCost:
    def test_energy_proportional_to_time(self):
        cost = MODEL.extraction_cost("orb", 10**6)
        assert cost.joules == pytest.approx(cost.seconds * MODEL.profile.cpu_power_w)

    def test_orb_two_orders_cheaper_than_sift(self):
        orb = MODEL.extraction_cost("orb", 10**6)
        sift = MODEL.extraction_cost("sift", 10**6)
        assert 30 < sift.joules / orb.joules < 150

    def test_pca_sift_costlier_than_sift(self):
        sift = MODEL.extraction_cost("sift", 10**6)
        pca = MODEL.extraction_cost("pca-sift", 10**6)
        assert pca.joules > sift.joules

    def test_compression_scales_quadratically(self):
        full = MODEL.extraction_cost("orb", 10**6, 0.0)
        compressed = MODEL.extraction_cost("orb", 10**6, 0.4)
        assert compressed.joules == pytest.approx(full.joules * 0.36)

    def test_unknown_kind_rejected(self):
        with pytest.raises(EnergyError):
            MODEL.extraction_cost("surf", 100)

    def test_rejects_negative_pixels(self):
        with pytest.raises(EnergyError):
            MODEL.extraction_cost("orb", -1)

    def test_rejects_bad_proportion(self):
        with pytest.raises(EnergyError):
            MODEL.extraction_cost("orb", 100, 1.5)

    @given(
        st.floats(min_value=0.0, max_value=0.95),
        st.floats(min_value=0.0, max_value=0.95),
    )
    def test_monotone_in_compression(self, a, b):
        low, high = sorted((a, b))
        assert (
            MODEL.extraction_cost("orb", 10**6, high).joules
            <= MODEL.extraction_cost("orb", 10**6, low).joules
        )


class TestOtherCosts:
    def test_compression_cost_linear_in_pixels(self):
        one = MODEL.compression_cost(10**6)
        two = MODEL.compression_cost(2 * 10**6)
        assert two.joules == pytest.approx(2 * one.joules)

    def test_transfer_cost_uses_radio_power(self):
        cost = MODEL.transfer_cost(10.0)
        assert cost.joules == pytest.approx(10.0 * MODEL.profile.radio_power_w)

    def test_baseline_cost(self):
        cost = MODEL.baseline_cost(60.0)
        assert cost.joules == pytest.approx(60.0 * MODEL.profile.baseline_power_w)

    def test_rejections(self):
        with pytest.raises(EnergyError):
            MODEL.compression_cost(-1)
        with pytest.raises(EnergyError):
            MODEL.transfer_cost(-1.0)
        with pytest.raises(EnergyError):
            MODEL.baseline_cost(-1.0)


class TestCalibration:
    def test_direct_upload_energy_regime(self):
        # A 700 KB image at ~256 Kbps takes ~22 s and ~38 J — the ratio
        # every figure's shape hangs on.
        seconds = 700 * 1024 * 8 / 256_000
        cost = MODEL.transfer_cost(seconds)
        assert 30 < cost.joules < 50

    def test_sift_extraction_fraction_of_upload(self):
        upload = MODEL.transfer_cost(700 * 1024 * 8 / 256_000)
        sift = MODEL.extraction_cost("sift", 1632 * 1224)
        assert 0.1 < sift.joules / upload.joules < 0.25
