"""Differential tests: bit-plane majority vote vs the Python reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.kernels import majority_vote_bytes, majority_vote_stats

from .reference import reference_majority_vote


def _random_replicas(rng, k, n_bytes):
    return [rng.integers(0, 256, n_bytes).astype(np.uint8).tobytes() for _ in range(k)]


class TestDifferential:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 7, 8])
    @pytest.mark.parametrize("n_bytes", [0, 1, 7, 64, 1000])
    def test_matches_reference_on_random_replicas(self, k, n_bytes):
        rng = np.random.default_rng(k * 1_000 + n_bytes)
        replicas = _random_replicas(rng, k, n_bytes)
        assert majority_vote_bytes(replicas) == reference_majority_vote(replicas)

    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_reference_property(self, k, n_bytes, seed):
        rng = np.random.default_rng(seed)
        replicas = _random_replicas(rng, k, n_bytes)
        assert majority_vote_bytes(replicas) == reference_majority_vote(replicas)

    def test_even_k_tie_clears_the_bit(self):
        # k=2, disagreement at bit 0: strict majority fails, bit -> 0.
        replicas = [b"\x01", b"\x00"]
        assert majority_vote_bytes(replicas) == b"\x00"
        assert reference_majority_vote(replicas) == b"\x00"

    def test_even_k_agreement_survives(self):
        replicas = [b"\xff", b"\xff", b"\xf0", b"\xff"]
        assert majority_vote_bytes(replicas) == b"\xff"
        assert reference_majority_vote(replicas) == b"\xff"


class TestSemantics:
    def test_single_replica_is_identity(self):
        assert majority_vote_bytes([b"\xa5\x5a"]) == b"\xa5\x5a"

    def test_empty_payload(self):
        assert majority_vote_bytes([b"", b"", b""]) == b""

    def test_no_replicas_rejected(self):
        with pytest.raises(NetworkError):
            majority_vote_bytes([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(NetworkError):
            majority_vote_bytes([b"ab", b"abc"])

    def test_minority_corruption_outvoted(self):
        clean = bytes(range(64))
        bad = bytearray(clean)
        bad[10] ^= 0xFF
        assert majority_vote_bytes([clean, bytes(bad), clean]) == clean

    def test_accepts_bytearray_replicas(self):
        clean = bytearray(b"\x12\x34")
        assert majority_vote_bytes([clean, clean, clean]) == b"\x12\x34"


class TestStats:
    def test_no_disputes_on_agreement(self):
        voted, disputed = majority_vote_stats([b"abc"] * 3)
        assert voted == b"abc"
        assert disputed == 0

    def test_counts_disputed_positions(self):
        clean = bytes(range(32))
        bad = bytearray(clean)
        bad[3] ^= 0x01
        bad[17] ^= 0x80
        voted, disputed = majority_vote_stats([clean, bytes(bad), clean])
        assert voted == clean
        assert disputed == 2

    def test_single_replica_reports_zero(self):
        voted, disputed = majority_vote_stats([b"xyz"])
        assert voted == b"xyz"
        assert disputed == 0
