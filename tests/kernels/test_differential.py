"""Differential suite: kernels vs. the frozen pre-kernel references.

Every kernel must be *byte-identical* to the implementation it
replaced — same values, same dtypes, same dict contents — across
seeds × batch sizes × descriptor kinds.  These tests are the contract
that lets the hot paths change evaluation strategy without any BEES
decision (kept/eliminated ids, bytes, joules) moving.
"""

import numpy as np
import pytest

from repro.core.ssmm import partition_components, similarity_matrix
from repro.features.matching import hamming_distance_matrix
from repro.index.lsh import HammingLSH
from repro.kernels.cache import MatchCountCache, set_match_cache

from .reference import (
    ReferenceHammingLSH,
    reference_hamming_distance_matrix,
    reference_partition_components,
    reference_similarity_matrix,
    synthetic_feature_sets,
)

KINDS = ("orb", "sift", "pca-sift")
SEEDS = (0, 1, 2)
BATCH_SIZES = (2, 5, 9)


@pytest.fixture()
def fresh_cache():
    """Route the global cache to a fresh instance for one test."""
    cache = MatchCountCache()
    previous = set_match_cache(cache)
    yield cache
    set_match_cache(previous)


class TestHammingDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shape", [(1, 1), (3, 7), (40, 25), (64, 64)])
    def test_matches_reference(self, seed, shape):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (shape[0], 32)).astype(np.uint8)
        b = rng.integers(0, 256, (shape[1], 32)).astype(np.uint8)
        expected = reference_hamming_distance_matrix(a, b)
        actual = hamming_distance_matrix(a, b)
        assert actual.dtype == expected.dtype
        assert np.array_equal(actual, expected)

    def test_matches_reference_on_sketch_width(self):
        # The float-kind LSH sketches are 16-byte rows; 16 % 8 == 0 but
        # exercises a different word count than ORB's 32.
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, (11, 16)).astype(np.uint8)
        b = rng.integers(0, 256, (6, 16)).astype(np.uint8)
        assert np.array_equal(
            hamming_distance_matrix(a, b), reference_hamming_distance_matrix(a, b)
        )

    @pytest.mark.parametrize("width", [1, 3, 13])
    def test_matches_reference_on_unpadded_widths(self, width):
        rng = np.random.default_rng(width)
        a = rng.integers(0, 256, (9, width)).astype(np.uint8)
        b = rng.integers(0, 256, (4, width)).astype(np.uint8)
        assert np.array_equal(
            hamming_distance_matrix(a, b), reference_hamming_distance_matrix(a, b)
        )


class TestSimilarityMatrixDifferential:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_sets", BATCH_SIZES)
    def test_byte_identical_to_reference(self, kind, seed, n_sets, fresh_cache):
        sets = synthetic_feature_sets(kind, n_sets, n_descriptors=24, seed=seed)
        expected = reference_similarity_matrix(sets)
        actual = similarity_matrix(sets)
        assert actual.dtype == expected.dtype
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("kind", KINDS)
    def test_warm_cache_identical_to_cold(self, kind, fresh_cache):
        sets = synthetic_feature_sets(kind, 6, n_descriptors=20, seed=9)
        cold = similarity_matrix(sets)
        assert fresh_cache.stats()["hits"] == 0
        warm = similarity_matrix(sets)
        assert fresh_cache.stats()["hits"] == 15  # all 6*5/2 pairs
        assert np.array_equal(cold, warm)
        assert np.array_equal(warm, reference_similarity_matrix(sets))

    def test_some_synthetic_pairs_actually_match(self, fresh_cache):
        # Guard the generator itself: a degenerate all-zeros matrix
        # would make every differential above vacuous.
        for kind in KINDS:
            sets = synthetic_feature_sets(kind, 5, n_descriptors=24, seed=0)
            off_diagonal = similarity_matrix(sets) - np.eye(5)
            assert off_diagonal.max() > 0.0, kind

    def test_real_extractor_features(self, small_batch_features, fresh_cache):
        _, feature_sets = small_batch_features
        expected = reference_similarity_matrix(feature_sets)
        assert np.array_equal(similarity_matrix(feature_sets), expected)


class TestLshVotingDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_images", (1, 5, 12))
    def test_votes_identical_to_reference(self, seed, n_images):
        rng = np.random.default_rng(seed)
        lsh = HammingLSH(n_bits=256)
        reference = ReferenceHammingLSH(HammingLSH(n_bits=256))
        stored = [
            rng.integers(0, 256, (rng.integers(1, 40), 32)).astype(np.uint8)
            for _ in range(n_images)
        ]
        for ref_id, packed in enumerate(stored):
            lsh.add(packed, ref=ref_id)
            reference.add(packed, ref=ref_id)
        for packed in stored:
            assert lsh.votes(packed) == reference.votes(packed)
        probe = rng.integers(0, 256, (30, 32)).astype(np.uint8)
        assert lsh.votes(probe) == reference.votes(probe)

    def test_votes_from_keys_identical(self):
        rng = np.random.default_rng(7)
        lsh = HammingLSH(n_bits=256)
        reference = ReferenceHammingLSH(HammingLSH(n_bits=256))
        for ref_id in range(6):
            packed = rng.integers(0, 256, (20, 32)).astype(np.uint8)
            lsh.add(packed, ref=ref_id)
            reference.add(packed, ref=ref_id)
        keys = lsh.keys(rng.integers(0, 256, (15, 32)).astype(np.uint8))
        assert lsh.votes_from_keys(keys) == reference.votes_from_keys(keys)

    def test_duplicate_query_descriptors_count_per_descriptor(self):
        # A ref earns one vote per (query descriptor, table) hit, so a
        # duplicated query row doubles its contribution — semantics the
        # kernel's weighted bincount must preserve exactly.
        rng = np.random.default_rng(11)
        base = rng.integers(0, 256, (8, 32)).astype(np.uint8)
        lsh = HammingLSH(n_bits=256)
        reference = ReferenceHammingLSH(HammingLSH(n_bits=256))
        lsh.add(base, ref=0)
        reference.add(base, ref=0)
        doubled = np.concatenate([base, base], axis=0)
        assert lsh.votes(doubled) == reference.votes(doubled)


class TestPartitionDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_labels_identical_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        raw = rng.uniform(0, 1, (n, n))
        weights = (raw + raw.T) / 2
        np.fill_diagonal(weights, 1.0)
        cut = float(rng.uniform(0, 1))
        expected = reference_partition_components(weights, cut)
        actual = partition_components(weights, cut)
        assert np.array_equal(actual, expected)

    def test_chain_graph(self):
        # A long path is the worst case for naive root chasing; the
        # vectorized pointer-jumping must land on the same labels.
        n = 64
        weights = np.eye(n)
        for i in range(n - 1):
            weights[i, i + 1] = weights[i + 1, i] = 0.9
        expected = reference_partition_components(weights, 0.5)
        assert np.array_equal(partition_components(weights, 0.5), expected)
        assert len(set(expected.tolist())) == 1
