"""Unit tests for the match-count cache and its content-addressed keys."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.cache import (
    MatchCountCache,
    descriptor_fingerprint,
    get_match_cache,
    match_key,
    set_match_cache,
)


def _descriptors(seed, shape=(4, 32)):
    return np.random.default_rng(seed).integers(0, 256, shape).astype(np.uint8)


class TestFingerprint:
    def test_deterministic(self):
        a = _descriptors(0)
        assert descriptor_fingerprint(a) == descriptor_fingerprint(a.copy())

    def test_sensitive_to_content(self):
        a = _descriptors(0)
        b = a.copy()
        b[0, 0] ^= 1
        assert descriptor_fingerprint(a) != descriptor_fingerprint(b)

    def test_sensitive_to_shape(self):
        flat = np.zeros(64, dtype=np.uint8).reshape(2, 32)
        tall = np.zeros(64, dtype=np.uint8).reshape(4, 16)
        assert descriptor_fingerprint(flat) != descriptor_fingerprint(tall)

    def test_sensitive_to_dtype(self):
        as_u8 = np.zeros((2, 8), dtype=np.uint8)
        as_f32 = np.zeros((2, 8), dtype=np.float32)
        assert descriptor_fingerprint(as_u8) != descriptor_fingerprint(as_f32)

    def test_non_contiguous_equals_contiguous(self):
        base = _descriptors(1, shape=(8, 32))
        strided = base[::2]
        assert descriptor_fingerprint(strided) == descriptor_fingerprint(
            np.ascontiguousarray(strided)
        )


class TestMatchKey:
    def test_symmetric(self):
        a, b = _descriptors(0), _descriptors(1)
        assert match_key("orb", 64, "img-a", a, "img-b", b) == match_key(
            "orb", 64, "img-b", b, "img-a", a
        )

    def test_distinguishes_kind_and_threshold(self):
        a, b = _descriptors(0), _descriptors(1)
        base = match_key("orb", 64, "img-a", a, "img-b", b)
        assert base != match_key("orb", 65, "img-a", a, "img-b", b)
        assert base != match_key("sift", 64, "img-a", a, "img-b", b)

    def test_same_id_different_content_never_aliases(self):
        a, b = _descriptors(0), _descriptors(1)
        changed = a.copy()
        changed[0] ^= 0xFF
        assert match_key("orb", 64, "x", a, "y", b) != match_key(
            "orb", 64, "x", changed, "y", b
        )


class TestMatchCountCache:
    def test_miss_then_hit(self):
        cache = MatchCountCache()
        assert cache.get("k") is None
        cache.put("k", 7)
        assert cache.get("k") == 7
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_lru_eviction_order(self):
        cache = MatchCountCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = MatchCountCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes, so "b" evicts next
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_clear_resets_counters(self):
        cache = MatchCountCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.clear()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            MatchCountCache(max_entries=0)


class TestGlobalCache:
    def test_set_returns_previous_and_restores(self):
        replacement = MatchCountCache()
        previous = set_match_cache(replacement)
        try:
            assert get_match_cache() is replacement
        finally:
            assert set_match_cache(previous) is replacement
        assert get_match_cache() is previous
