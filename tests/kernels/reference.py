"""Pre-kernel reference implementations, frozen for differential tests.

These are the hot-path implementations the repo shipped *before* the
``repro.kernels`` layer, copied here verbatim (modulo naming) so the
kernel suite can prove the vectorized paths byte-identical on every
input.  They intentionally share no code with ``repro.kernels``:

* :func:`reference_hamming_distance_matrix` — uint8 XOR tensor + a
  256-entry popcount-table gather;
* :class:`ReferenceHammingLSH` — dict-of-list buckets that append one
  entry per (descriptor, key) hit and deduplicate with ``set()`` at
  vote time, with per-key Python loops;
* :func:`reference_similarity_matrix` — the per-pair Jaccard loop,
  re-casting both descriptor matrices on every pair, no caching;
* :func:`reference_partition_components` — union-find with a
  per-vertex Python ``find`` loop for root resolution;
* :func:`reference_majority_vote` — the per-byte, per-bit Python
  majority-vote loop the bit-plane kernel replaces.

``mutual_matches`` and ``l2_distance_matrix`` are imported from
production: the kernel layer did not change them, and reusing them
keeps the differentials focused on what did change.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.features.matching import (
    DEFAULT_HAMMING_THRESHOLD,
    L2_THRESHOLDS,
    l2_distance_matrix,
    mutual_matches,
)

_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)


def reference_hamming_distance_matrix(a, b):
    """The pre-kernel Hamming matrix: (n, m, width) XOR + table gather."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    xor = np.bitwise_xor(a[:, None, :], b[None, :, :])
    return _POPCOUNT[xor].sum(axis=2).astype(np.int64)


def reference_match_count(desc_a, desc_b, kind, threshold=None):
    """The pre-kernel ``match_count`` body."""
    if len(desc_a) == 0 or len(desc_b) == 0:
        return 0
    if kind == "orb":
        dist = reference_hamming_distance_matrix(desc_a, desc_b)
        limit = DEFAULT_HAMMING_THRESHOLD if threshold is None else threshold
    else:
        dist = l2_distance_matrix(desc_a, desc_b)
        limit = L2_THRESHOLDS[kind] if threshold is None else threshold
    return int(mutual_matches(dist, limit).shape[0])


def reference_jaccard(features_a, features_b, threshold=None):
    """The pre-kernel pairwise Equation-2 similarity."""
    n_a, n_b = len(features_a), len(features_b)
    if n_a == 0 and n_b == 0:
        return 0.0
    matches = reference_match_count(
        features_a.descriptors, features_b.descriptors, features_a.kind, threshold
    )
    union = n_a + n_b - matches
    if union <= 0:
        return 1.0
    return matches / union


def reference_similarity_matrix(feature_sets):
    """The pre-kernel per-pair SSMM similarity-matrix loop."""
    n = len(feature_sets)
    weights = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            weights[i, j] = weights[j, i] = reference_jaccard(
                feature_sets[i], feature_sets[j]
            )
    return weights


class ReferenceHammingLSH:
    """The pre-kernel bucket storage + voting, dict-of-lists style.

    Key generation is delegated to a production
    :class:`~repro.index.lsh.HammingLSH` built with the same geometry —
    keys were not changed by the kernel layer, and sharing them makes
    the bucket/vote differential exact.
    """

    def __init__(self, lsh):
        self._lsh = lsh
        self._tables = [defaultdict(list) for _ in range(lsh.n_tables)]

    def add(self, packed, ref):
        keys = self._lsh.keys(packed)
        for table, table_keys in zip(self._tables, keys.T):
            for key in table_keys:
                table[int(key)].append(ref)

    def votes(self, packed):
        if len(packed) == 0:
            return {}
        return self.votes_from_keys(self._lsh.keys(packed))

    def votes_from_keys(self, keys):
        counts = defaultdict(int)
        for table, table_keys in zip(self._tables, keys.T):
            for key in table_keys:
                bucket = table.get(int(key))
                if not bucket:
                    continue
                for ref in set(bucket):
                    counts[ref] += 1
        return dict(counts)

    def bucket_lengths(self):
        return [
            len(bucket) for table in self._tables for bucket in table.values()
        ]


def reference_partition_components(weights, cut_threshold):
    """The pre-kernel union-find with per-vertex Python root loop."""
    weights = np.asarray(weights)
    n = weights.shape[0]
    parent = np.arange(n)

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows, cols = np.nonzero(np.triu(weights >= cut_threshold, k=1))
    for i, j in zip(rows.tolist(), cols.tolist()):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    roots = np.array([find(i) for i in range(n)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def reference_majority_vote(replicas):
    """The per-byte pure-Python majority vote, bit by bit.

    Same semantics as :func:`repro.kernels.majority.majority_vote_bytes`
    — bit ``b`` of output byte ``i`` is set iff a strict majority of
    replicas set it (ties clear) — evaluated with Python loops over
    every byte and bit, no numpy.
    """
    if not replicas:
        raise ValueError("majority vote needs at least one replica")
    k = len(replicas)
    n_bytes = len(replicas[0])
    for replica in replicas:
        if len(replica) != n_bytes:
            raise ValueError("majority vote needs equal-length replicas")
    if k == 1:
        return bytes(replicas[0])
    voted = bytearray(n_bytes)
    for i in range(n_bytes):
        byte = 0
        for bit in range(8):
            ones = 0
            for replica in replicas:
                ones += (replica[i] >> bit) & 1
            if 2 * ones > k:
                byte |= 1 << bit
        voted[i] = byte
    return bytes(voted)


def synthetic_feature_sets(kind, n_sets, n_descriptors, seed):
    """Deterministic feature sets with real descriptor overlap.

    Images draw descriptors from a shared pool (exact repeats across
    sets) and lightly perturb some rows (near-matches inside the kind's
    ceiling), so mutual matching, the ratio test, and Jaccard all
    exercise their interesting branches.
    """
    from repro.features.base import FeatureSet

    rng = np.random.default_rng(seed)
    pool_size = max(2 * n_descriptors, 4)
    if kind == "orb":
        pool = rng.integers(0, 256, (pool_size, 32)).astype(np.uint8)
    else:
        dim = 128 if kind == "sift" else 36
        pool = rng.normal(size=(pool_size, dim)).astype(np.float32)
        pool /= np.linalg.norm(pool, axis=1, keepdims=True)
    sets = []
    for number in range(n_sets):
        take = rng.choice(pool_size, size=n_descriptors, replace=False)
        descriptors = pool[take].copy()
        perturb = rng.random(n_descriptors) < 0.3
        if kind == "orb":
            bits = np.unpackbits(descriptors, axis=1)
            flips = rng.random(bits.shape) < 0.02  # ~5 of 256 bits
            bits[perturb] ^= flips[perturb]
            descriptors = np.packbits(bits, axis=1)
        else:
            noise = rng.normal(scale=0.02, size=descriptors.shape).astype(np.float32)
            descriptors[perturb] += noise[perturb]
        n = len(descriptors)
        sets.append(
            FeatureSet(
                kind=kind,
                descriptors=descriptors,
                xs=np.zeros(n, dtype=np.float32),
                ys=np.zeros(n, dtype=np.float32),
                pixels_processed=n,
                image_id=f"synth-{kind}-{seed}-{number}",
            )
        )
    return sets
