"""Unit tests for the shared-memory byte arenas.

The process-index tests exercise the arena cross-process; these pin
the in-process contract — append-only refs stay valid forever, views
are zero-copy, lifetime is explicit, and close() under live views
still returns the memory.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.arena import (
    ArenaReader,
    ArenaRef,
    SharedArena,
    as_matrix,
    attach_block,
    unlink_block,
)


@pytest.fixture
def arena():
    with SharedArena(name_prefix="beestest", chunk_bytes=256) as arena:
        yield arena


class TestAppend:
    def test_round_trip(self, arena):
        ref = arena.append(b"hello arena")
        assert bytes(arena.view(ref)) == b"hello arena"
        assert ref.length == len(b"hello arena")

    def test_refs_stay_valid_as_the_arena_grows(self, arena):
        refs = [(arena.append(bytes([n]) * 50), bytes([n]) * 50) for n in range(20)]
        # 20 * 56 aligned bytes > several 256-byte chunks.
        assert arena.n_blocks > 1
        for ref, expected in refs:
            assert bytes(arena.view(ref)) == expected

    def test_oversized_payload_gets_its_own_block(self, arena):
        before = arena.n_blocks
        ref = arena.append(b"x" * 1000)
        assert arena.n_blocks == before + 1
        assert ref.offset == 0
        assert bytes(arena.view(ref)) == b"x" * 1000

    def test_appends_are_aligned(self, arena):
        arena.append(b"abc")  # 3 bytes, aligned up to 8
        ref = arena.append(b"d")
        assert ref.offset % 8 == 0

    def test_view_is_zero_copy(self, arena):
        ref = arena.append(b"\x00" * 8)
        view = arena.view(ref)
        view[0] = 0xAB
        assert arena.view(ref)[0] == 0xAB

    def test_used_and_allocated_accounting(self, arena):
        arena.append(b"y" * 10)
        assert arena.used_bytes == 10
        assert arena.allocated_bytes >= 256

    def test_unknown_ref_rejected(self, arena):
        with pytest.raises(ConfigurationError):
            arena.view(ArenaRef("no-such-block", 0, 1))

    def test_append_after_close_rejected(self):
        arena = SharedArena(name_prefix="beestest")
        arena.close()
        with pytest.raises(ConfigurationError):
            arena.append(b"late")

    def test_tiny_chunk_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedArena(chunk_bytes=4)


class TestAsMatrix:
    def test_reinterprets_rows(self, arena):
        rows = np.arange(12, dtype=np.uint8).reshape(3, 4)
        ref = arena.append(rows.tobytes())
        matrix = as_matrix(arena.view(ref), 3, 4, "uint8")
        np.testing.assert_array_equal(matrix, rows)

    def test_size_mismatch_rejected(self, arena):
        ref = arena.append(b"\x00" * 12)
        with pytest.raises(ConfigurationError):
            as_matrix(arena.view(ref), 5, 4, "uint8")


class TestLifetime:
    def test_close_unlinks_blocks(self):
        arena = SharedArena(name_prefix="beestest")
        ref = arena.append(b"gone soon")
        names = arena.block_names()
        arena.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                attach_block(name)
        assert not unlink_block(ref.block)

    def test_close_is_idempotent_and_survives_live_views(self):
        arena = SharedArena(name_prefix="beestest")
        ref = arena.append(b"pinned by a view")
        view = arena.view(ref)
        arena.close()  # view alive: close defers, unlink still happens
        arena.close()
        assert bytes(view) == b"pinned by a view"

    def test_reader_attaches_and_detaches(self):
        arena = SharedArena(name_prefix="beestest")
        ref = arena.append(b"cross-handle read")
        reader = ArenaReader()
        assert bytes(reader.view(ref)) == b"cross-handle read"
        reader.forget([ref.block])
        reader.close()
        arena.close()

    def test_reader_close_is_idempotent(self):
        reader = ArenaReader()
        reader.close()
        reader.close()
