"""Unit tests for the vectorized LSH bucket store."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.kernels.voting import BucketStore, group_query_keys


def _keys(rows):
    """Build a (n_desc, n_tables) int64 key matrix from nested lists."""
    return np.asarray(rows, dtype=np.int64)


class TestInsert:
    def test_insert_dedupes_within_call(self):
        store = BucketStore(n_tables=1)
        store.insert(_keys([[5], [5], [5]]), ref=0)
        assert store.bucket_lengths() == [1]

    def test_insert_dedupes_across_calls(self):
        store = BucketStore(n_tables=1)
        store.insert(_keys([[5]]), ref=0)
        store.insert(_keys([[5]]), ref=0)
        assert store.bucket_lengths() == [1]

    def test_distinct_refs_share_bucket(self):
        store = BucketStore(n_tables=1)
        store.insert(_keys([[5]]), ref=0)
        store.insert(_keys([[5]]), ref=3)
        assert store.bucket_lengths() == [2]

    def test_buckets_stay_sorted(self):
        store = BucketStore(n_tables=1)
        for ref in (9, 2, 7, 2, 0):
            store.insert(_keys([[1]]), ref=ref)
        (bucket,) = store._tables[0].values()
        assert bucket.tolist() == [0, 2, 7, 9]

    def test_tables_are_independent(self):
        store = BucketStore(n_tables=2)
        store.insert(_keys([[1, 2]]), ref=0)
        assert len(store._tables[0]) == 1
        assert len(store._tables[1]) == 1
        assert 1 in store._tables[0] and 2 in store._tables[1]

    def test_rejects_wrong_table_count(self):
        store = BucketStore(n_tables=3)
        with pytest.raises(IndexError_):
            store.insert(_keys([[1, 2]]), ref=0)
        with pytest.raises(IndexError_):
            store.votes(_keys([[1, 2]]))

    def test_rejects_zero_tables(self):
        with pytest.raises(IndexError_):
            BucketStore(n_tables=0)

    def test_empty_insert_is_noop(self):
        store = BucketStore(n_tables=2)
        store.insert(np.zeros((0, 2), dtype=np.int64), ref=0)
        assert store.bucket_lengths() == []


class TestVotes:
    def test_one_vote_per_table_hit(self):
        store = BucketStore(n_tables=2)
        store.insert(_keys([[1, 2]]), ref=4)
        assert store.votes(_keys([[1, 2]])) == {4: 2}
        assert store.votes(_keys([[1, 99]])) == {4: 1}
        assert store.votes(_keys([[98, 99]])) == {}

    def test_duplicate_query_keys_multiply_weight(self):
        store = BucketStore(n_tables=1)
        store.insert(_keys([[5]]), ref=0)
        assert store.votes(_keys([[5], [5], [5]])) == {0: 3}

    def test_votes_are_python_ints(self):
        store = BucketStore(n_tables=1)
        store.insert(_keys([[5]]), ref=0)
        votes = store.votes(_keys([[5]]))
        (ref, count) = next(iter(votes.items()))
        assert type(ref) is int and type(count) is int

    def test_empty_query(self):
        store = BucketStore(n_tables=2)
        store.insert(_keys([[1, 2]]), ref=0)
        assert store.votes(np.zeros((0, 2), dtype=np.int64)) == {}

    def test_empty_store(self):
        store = BucketStore(n_tables=2)
        assert store.votes(_keys([[1, 2]])) == {}

    def test_sparse_ref_ids(self):
        # bincount is indexed by ref id; large sparse ids must still work.
        store = BucketStore(n_tables=1)
        store.insert(_keys([[5]]), ref=100_000)
        store.insert(_keys([[5]]), ref=3)
        assert store.votes(_keys([[5]])) == {3: 1, 100_000: 1}


class TestGroupedKeys:
    def test_votes_equals_votes_from_grouped(self):
        # The coordinator hashes and groups once, then ships the grouped
        # form to every shard; both spellings must agree exactly.
        rng = np.random.default_rng(3)
        store = BucketStore(n_tables=4)
        for ref in range(12):
            store.insert(rng.integers(0, 16, (6, 4)), ref=ref)
        query = rng.integers(0, 16, (6, 4))
        assert store.votes_from_grouped(group_query_keys(query)) == store.votes(
            query
        )

    def test_grouped_counts_are_per_table_multiplicities(self):
        grouped = group_query_keys(_keys([[5, 7], [5, 8], [6, 7]]))
        assert len(grouped) == 2
        keys0, counts0 = grouped[0]
        assert keys0.tolist() == [5, 6]
        assert counts0.tolist() == [2, 1]
        keys1, counts1 = grouped[1]
        assert keys1.tolist() == [7, 8]
        assert counts1.tolist() == [2, 1]

    def test_rejects_non_2d_keys(self):
        with pytest.raises(IndexError_):
            group_query_keys(np.zeros(3, dtype=np.int64))
