"""Unit tests for the blocked Hamming kernel and its popcount backends."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.kernels.hamming import (
    BACKENDS,
    DEFAULT_BACKEND,
    hamming_distance_matrix,
    hamming_distance_matrix_u64,
    pack_rows_u64,
    popcount_u64,
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


class TestPopcount:
    def test_swar_on_known_values(self):
        words = np.array([0, 1, 3, 0xFF, 2**63, 2**64 - 1], dtype=np.uint64)
        counts = popcount_u64(words, backend="swar")
        assert counts.tolist() == [0, 1, 2, 8, 1, 64]

    @pytest.mark.skipif(not _HAS_BITWISE_COUNT, reason="needs np.bitwise_count")
    def test_backends_agree_on_random_words(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
        assert np.array_equal(
            popcount_u64(words, backend="swar"),
            popcount_u64(words, backend="bitwise_count"),
        )

    def test_swar_does_not_mutate_input(self):
        words = np.array([7, 8], dtype=np.uint64)
        popcount_u64(words, backend="swar")
        assert words.tolist() == [7, 8]

    def test_default_backend_is_valid(self):
        assert DEFAULT_BACKEND in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(FeatureError):
            popcount_u64(np.zeros(1, dtype=np.uint64), backend="lookup-table")


class TestPackRows:
    def test_multiple_of_eight_is_a_view(self):
        rows = np.arange(64, dtype=np.uint8).reshape(2, 32)
        words = pack_rows_u64(rows)
        assert words.shape == (2, 4)
        assert words.dtype == np.uint64

    def test_odd_width_zero_padded(self):
        rows = np.full((3, 5), 255, dtype=np.uint8)
        words = pack_rows_u64(rows)
        assert words.shape == (3, 1)
        # 5 bytes of 0xFF = 40 set bits, padding adds none.
        assert popcount_u64(words).sum() == 3 * 40

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            pack_rows_u64(np.zeros(8, dtype=np.uint8))

    def test_non_contiguous_input(self):
        rows = np.arange(128, dtype=np.uint8).reshape(4, 32)[::2]
        assert pack_rows_u64(rows).shape == (2, 4)


class TestBlockedDistance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_block_size_never_changes_distances(self, backend):
        if backend == "bitwise_count" and not _HAS_BITWISE_COUNT:
            pytest.skip("needs np.bitwise_count")
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, (33, 32)).astype(np.uint8)
        b = rng.integers(0, 256, (17, 32)).astype(np.uint8)
        whole = hamming_distance_matrix(a, b, backend=backend)
        for block_rows in (1, 2, 7, 100):
            blocked = hamming_distance_matrix(
                a, b, backend=backend, block_rows=block_rows
            )
            assert np.array_equal(whole, blocked)

    def test_empty_sides(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        some = np.zeros((3, 32), dtype=np.uint8)
        assert hamming_distance_matrix(empty, some).shape == (0, 3)
        assert hamming_distance_matrix(some, empty).shape == (3, 0)
        assert hamming_distance_matrix(empty, empty).shape == (0, 0)

    def test_rejects_mismatched_widths(self):
        with pytest.raises(FeatureError):
            hamming_distance_matrix(
                np.zeros((2, 32), dtype=np.uint8), np.zeros((2, 16), dtype=np.uint8)
            )

    def test_u64_entry_point_rejects_mismatched_words(self):
        with pytest.raises(FeatureError):
            hamming_distance_matrix_u64(
                np.zeros((2, 4), dtype=np.uint64), np.zeros((2, 2), dtype=np.uint64)
            )

    def test_extremes(self):
        zeros = np.zeros((1, 32), dtype=np.uint8)
        ones = np.full((1, 32), 255, dtype=np.uint8)
        assert hamming_distance_matrix(zeros, ones)[0, 0] == 256
        assert hamming_distance_matrix(ones, ones)[0, 0] == 0
