"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_scheme_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--schemes", "nope"])


class TestInfo:
    def test_prints_profile_and_policies(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "battery" in out
        assert "EAC" in out
        assert "EDR" in out
        assert "EAU" in out

    def test_prints_observability_configuration(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "observability:" in out
        assert "enabled        False" in out
        assert "exporters      (none)" in out
        assert "stage buckets" in out


class TestCompare:
    def test_small_comparison_runs(self, capsys):
        code = main(
            [
                "compare",
                "--images", "8",
                "--in-batch", "1",
                "--redundancy", "0.25",
                "--schemes", "direct", "bees",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Direct Upload" in out
        assert "BEES" in out
        assert "energy" in out

    def test_trace_and_metrics_exports(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "compare",
                "--images", "6",
                "--in-batch", "1",
                "--redundancy", "0.25",
                "--schemes", "direct", "bees",
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert str(trace_path) in out
        assert str(metrics_path) in out

        spans = [
            json.loads(line) for line in trace_path.read_text().splitlines() if line
        ]
        assert spans
        for span in spans:
            for key in ("name", "start", "duration", "span_id", "parent_id"):
                assert key in span
        assert any(span["name"] == "bees.batch" for span in spans)

        metrics_text = metrics_path.read_text()
        assert "bees_bytes_sent_total" in metrics_text
        assert "bees_energy_joules_total" in metrics_text
        for stage in ("afe", "feature_upload", "aiu", "image_upload"):
            assert f'bees_stage_seconds_bucket{{le="+Inf",scheme="BEES",stage="{stage}"}}' in metrics_text

        # The global context must be back to disabled after the command.
        from repro.obs import get_obs

        assert not get_obs().enabled

    def test_photonet_selectable(self, capsys):
        code = main(
            [
                "compare",
                "--images", "5",
                "--in-batch", "0",
                "--schemes", "photonet",
            ]
        )
        assert code == 0
        assert "PhotoNet" in capsys.readouterr().out


class TestLifetime:
    def test_tiny_lifetime_runs(self, capsys):
        code = main(
            [
                "lifetime",
                "--group-size", "4",
                "--interval-minutes", "5",
                "--capacity", "0.01",
                "--max-groups", "10",
                "--schemes", "direct",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Direct Upload" in out
        assert "groups" in out


class TestShare:
    def test_share_folder(self, generator, tmp_path, capsys):
        from repro.imaging.io import write_ppm

        for name, (scene, view) in {
            "bridge-1": (510, 0),
            "bridge-2": (510, 1),
            "tower": (511, 0),
        }.items():
            write_ppm(generator.view(scene, view), tmp_path / f"{name}.ppm")
        assert main(["share", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "uploaded:          2" in out
        assert "in-batch redundant: 1" in out

    def test_share_missing_folder_fails_cleanly(self, tmp_path):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            main(["share", str(tmp_path / "missing")])


class TestMetricsCommand:
    def test_renders_captured_metrics_file(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "compare",
                    "--images", "5",
                    "--in-batch", "0",
                    "--schemes", "bees",
                    "--metrics", str(metrics_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "bees_bytes_sent_total" in out
        assert "scheme=BEES" in out

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(OSError):
            main(["metrics", str(tmp_path / "nope.prom")])


class TestTop:
    def test_once_renders_a_final_frame(self, tmp_path, capsys):
        html = tmp_path / "dash.html"
        code = main(
            [
                "top", "--once",
                "--devices", "2",
                "--rounds", "1",
                "--batch-size", "4",
                "--interval", "0.2",
                "--spec", "slo/bees_slo.json",
                "--html", str(html),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "queue depth" in out
        assert "dev-00" in out
        assert "\x1b[2J" not in out  # --once never clears the screen
        text = html.read_text()
        assert "<html" in text
        assert "<svg" in text

    def test_bad_spec_fails_cleanly(self):
        with pytest.raises(SystemExit, match="top failed"):
            main(["top", "--once", "--spec", "nope.json"])


class TestProfileFlags:
    def test_parser_wires_profile_everywhere(self):
        parser = build_parser()
        for argv in (
            ["fleet", "run", "--profile", "p.folded", "--profile-hz", "50"],
            ["bench", "run", "--profile", "p.folded"],
        ):
            args = parser.parse_args(argv)
            assert args.profile == "p.folded"

    def test_bench_compare_accepts_slo_spec(self):
        args = build_parser().parse_args(
            ["bench", "compare", "base.json", "cand.json", "--slo", "s.json"]
        )
        assert args.slo == "s.json"


class TestCoverage:
    def test_tiny_coverage_runs(self, capsys):
        code = main(
            [
                "coverage",
                "--images", "40",
                "--locations", "15",
                "--phones", "1",
                "--group-size", "8",
                "--capacity", "0.004",
                "--schemes", "bees",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unique locations" in out


class TestJournalCommands:
    def fleet_journal(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main(
            [
                "fleet", "run",
                "--devices", "2",
                "--rounds", "1",
                "--batch-size", "3",
                "--shards", "1",
                "--mode", "sequential",
                "--journal", str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return path

    def test_fleet_run_writes_a_journal(self, tmp_path, capsys):
        path = self.fleet_journal(tmp_path, capsys)
        assert path.exists()
        assert '"fleet.run.start"' in path.read_text()

    def test_verify_journals_the_reference_run(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main(
            [
                "fleet", "run",
                "--devices", "2",
                "--rounds", "1",
                "--batch-size", "3",
                "--verify",
                "--journal", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert path.exists()
        assert (tmp_path / "run.jsonl.ref").exists()

    def test_journal_replay_round_trips(self, tmp_path, capsys):
        path = self.fleet_journal(tmp_path, capsys)
        assert main(["journal", "replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out
        assert "MATCHES" in out

    def test_journal_diff_of_identical_runs(self, tmp_path, capsys):
        path = self.fleet_journal(tmp_path, capsys)
        assert main(["journal", "diff", str(path), str(path)]) == 0
        assert "decision-identical" in capsys.readouterr().out

    def test_journal_stats_renders_devices(self, tmp_path, capsys):
        path = self.fleet_journal(tmp_path, capsys)
        assert main(["journal", "stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dev-00" in out
        assert "stragglers" in out

    def test_journal_explain_names_the_pipeline_stages(self, tmp_path, capsys):
        path = self.fleet_journal(tmp_path, capsys)
        import json as json_module

        image_id = None
        for line in path.read_text().splitlines()[1:]:
            raw = json_module.loads(line)
            if raw.get("image"):
                image_id = raw["image"]
                break
        assert image_id is not None
        assert main(["journal", "explain", str(path), image_id]) == 0
        out = capsys.readouterr().out
        assert image_id in out
        assert "cbrd.verdict" in out

    def test_journal_read_failure_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="journal read failed"):
            main(["journal", "stats", str(tmp_path / "missing.jsonl")])

    def test_top_journal_panel(self, tmp_path, capsys):
        path = tmp_path / "top.jsonl"
        code = main(
            [
                "top", "--once",
                "--devices", "2",
                "--rounds", "1",
                "--batch-size", "3",
                "--interval", "0.2",
                "--journal", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "journal" in out
        assert "cbrd.verdict" in out
        assert path.exists()
