"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_scheme_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--schemes", "nope"])


class TestInfo:
    def test_prints_profile_and_policies(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "battery" in out
        assert "EAC" in out
        assert "EDR" in out
        assert "EAU" in out


class TestCompare:
    def test_small_comparison_runs(self, capsys):
        code = main(
            [
                "compare",
                "--images", "8",
                "--in-batch", "1",
                "--redundancy", "0.25",
                "--schemes", "direct", "bees",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Direct Upload" in out
        assert "BEES" in out
        assert "energy" in out

    def test_photonet_selectable(self, capsys):
        code = main(
            [
                "compare",
                "--images", "5",
                "--in-batch", "0",
                "--schemes", "photonet",
            ]
        )
        assert code == 0
        assert "PhotoNet" in capsys.readouterr().out


class TestLifetime:
    def test_tiny_lifetime_runs(self, capsys):
        code = main(
            [
                "lifetime",
                "--group-size", "4",
                "--interval-minutes", "5",
                "--capacity", "0.01",
                "--max-groups", "10",
                "--schemes", "direct",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Direct Upload" in out
        assert "groups" in out


class TestShare:
    def test_share_folder(self, generator, tmp_path, capsys):
        from repro.imaging.io import write_ppm

        for name, (scene, view) in {
            "bridge-1": (510, 0),
            "bridge-2": (510, 1),
            "tower": (511, 0),
        }.items():
            write_ppm(generator.view(scene, view), tmp_path / f"{name}.ppm")
        assert main(["share", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "uploaded:          2" in out
        assert "in-batch redundant: 1" in out

    def test_share_missing_folder_fails_cleanly(self, tmp_path):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            main(["share", str(tmp_path / "missing")])


class TestCoverage:
    def test_tiny_coverage_runs(self, capsys):
        code = main(
            [
                "coverage",
                "--images", "40",
                "--locations", "15",
                "--phones", "1",
                "--group-size", "8",
                "--capacity", "0.004",
                "--schemes", "bees",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unique locations" in out
