"""Tests for the BENCH_*.json artifact schema."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    environment_block,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from repro.errors import BenchError

STAGE_SUMMARY = {
    "count": 3, "sum": 1.5, "mean": 0.5, "p50": 0.4, "p95": 0.9, "p99": 1.0,
}


def make_case(**overrides) -> dict:
    case = {
        "wall_seconds": 1.0,
        "stage_seconds": {"BEES/afe": dict(STAGE_SUMMARY)},
        "bytes_sent": {"BEES": 4096.0},
        "energy_joules": {"BEES/image_upload": 12.0},
        "eliminations": {},
    }
    case.update(overrides)
    return case


def make_artifact(cases=None) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": "test-run",
        "created_unix": 0,
        "quick": True,
        "env": {"python": "x"},
        "cases": {"a_case": make_case()} if cases is None else cases,
    }


class TestValidate:
    def test_valid_artifact_passes(self):
        artifact = make_artifact()
        assert validate_artifact(artifact) is artifact

    def test_non_object_rejected(self):
        with pytest.raises(BenchError):
            validate_artifact([])

    def test_wrong_schema_version_rejected(self):
        artifact = make_artifact()
        artifact["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchError) as excinfo:
            validate_artifact(artifact)
        assert "schema_version" in str(excinfo.value)

    @pytest.mark.parametrize("missing", ["run_id", "env", "cases"])
    def test_missing_top_level_key_rejected(self, missing):
        artifact = make_artifact()
        del artifact[missing]
        with pytest.raises(BenchError) as excinfo:
            validate_artifact(artifact)
        assert missing in str(excinfo.value)

    def test_non_numeric_wall_seconds_rejected(self):
        artifact = make_artifact({"c": make_case(wall_seconds="fast")})
        with pytest.raises(BenchError) as excinfo:
            validate_artifact(artifact)
        assert "wall_seconds" in str(excinfo.value)

    @pytest.mark.parametrize(
        "mapping", ["stage_seconds", "bytes_sent", "energy_joules", "eliminations"]
    )
    def test_non_mapping_metric_block_rejected(self, mapping):
        artifact = make_artifact({"c": make_case(**{mapping: 7})})
        with pytest.raises(BenchError) as excinfo:
            validate_artifact(artifact)
        assert mapping in str(excinfo.value)

    def test_stage_summary_missing_quantiles_rejected(self):
        broken = dict(STAGE_SUMMARY)
        del broken["p95"]
        artifact = make_artifact(
            {"c": make_case(stage_seconds={"BEES/afe": broken})}
        )
        with pytest.raises(BenchError) as excinfo:
            validate_artifact(artifact)
        assert "stage_seconds" in str(excinfo.value)


class TestReadWrite:
    def test_roundtrip(self, tmp_path):
        artifact = make_artifact()
        path = write_artifact(artifact, tmp_path / "BENCH_test.json")
        assert read_artifact(path) == artifact

    def test_write_validates_first(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        with pytest.raises(BenchError):
            write_artifact({"schema_version": 999}, path)
        assert not path.exists()

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(BenchError) as excinfo:
            read_artifact(tmp_path / "BENCH_nope.json")
        assert "no such artifact" in str(excinfo.value)

    def test_read_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_garbage.json"
        path.write_text("{not json")
        with pytest.raises(BenchError) as excinfo:
            read_artifact(path)
        assert "not valid JSON" in str(excinfo.value)

    def test_written_file_is_stable_json(self, tmp_path):
        path = write_artifact(make_artifact(), tmp_path / "BENCH_a.json")
        text = path.read_text()
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"


class TestEnvironmentBlock:
    def test_carries_reproducibility_context(self):
        env = environment_block()
        assert set(env) >= {
            "python", "implementation", "platform", "machine",
            "numpy", "repro", "git_sha", "argv",
        }
        assert env["python"].count(".") == 2
        # this test runs inside the repo checkout, so the SHA resolves
        assert env["git_sha"] is None or len(env["git_sha"]) == 40
