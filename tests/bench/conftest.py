"""Bench-harness test fixtures."""

import pytest

from repro.obs import disable


@pytest.fixture(autouse=True)
def reset_observability():
    """Leave the process-wide obs context disabled after every test."""
    yield
    disable()
