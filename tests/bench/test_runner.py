"""Tests for the bench runner: observability harvest + artifact assembly."""

import pytest

from repro.bench import (
    BenchCase,
    default_artifact_path,
    read_artifact,
    run_case,
    run_suite,
    save_suite,
    validate_artifact,
)
from repro.errors import BenchError
from repro.obs import get_obs


def make_fake_case(run, case_id="fake_case", params=None, quick_params=None):
    return BenchCase(
        case_id=case_id,
        module="no_such_module",
        figure="Test",
        description="synthetic case for runner tests",
        run=run,
        params={"n": 4} if params is None else params,
        quick_params={"n": 2} if quick_params is None else quick_params,
    )


class TestRunCase:
    def test_harvests_metrics_recorded_by_the_case(self):
        seen = {}

        def run(params):
            seen.update(params)
            obs = get_obs()
            assert obs.enabled  # the runner must enable collection
            obs.sent_bytes.inc(100, scheme="X")
            obs.energy_joules.inc(2.5, scheme="X", category="radio")
            obs.eliminations.inc(3, scheme="X", kind="cross")
            for value in (0.1, 0.2, 0.3):
                obs.stage_seconds.observe(value, scheme="X", stage="afe")
            return {"ok": True}

        block = run_case(make_fake_case(run), quick=True).block
        assert seen == {"n": 2}
        assert block["quick"] is True
        assert block["params"] == {"n": 2}
        assert block["wall_seconds"] > 0
        assert block["bytes_sent"] == {"X": 100.0}
        assert block["energy_joules"] == {"X/radio": 2.5}
        assert block["eliminations"] == {"X/cross": 3.0}
        summary = block["stage_seconds"]["X/afe"]
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.6)
        assert {"p50", "p95", "p99"} <= set(summary)
        assert block["result"] == {"ok": True}
        assert block["spans"] == 1  # just the bench root span
        assert not get_obs().enabled  # restored to the disabled default

    def test_full_params_by_default_and_overrides_win(self):
        captured = {}
        case = make_fake_case(lambda p: captured.update(p) or {})
        run_case(case)
        assert captured == {"n": 4}
        run_case(case, quick=True, params={"n": 99})
        assert captured == {"n": 99}

    def test_non_dict_result_rejected(self):
        with pytest.raises(BenchError) as excinfo:
            run_case(make_fake_case(lambda p: [1, 2]))
        assert "fake_case" in str(excinfo.value)
        assert not get_obs().enabled

    def test_raising_case_still_restores_disabled_obs(self):
        def run(params):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            run_case(make_fake_case(run))
        assert not get_obs().enabled


class TestRunSuiteEndToEnd:
    def test_quick_real_case_produces_valid_artifact(self, tmp_path):
        progressed = []
        artifact = run_suite(
            case_ids=["table1_space_overhead"],
            quick=True,
            progress=lambda case_id, seconds: progressed.append(case_id),
        )
        assert progressed == ["table1_space_overhead"]
        validate_artifact(artifact)
        assert artifact["quick"] is True
        assert set(artifact["cases"]) == {"table1_space_overhead"}
        case = artifact["cases"]["table1_space_overhead"]
        assert case["params"] == {"sample_images": 4}
        assert case["wall_seconds"] > 0
        for dataset in case["result"]["space"].values():
            assert set(dataset["features"]) == {"sift", "pca-sift", "orb"}
        # feature extraction is traced, so the case has child spans
        assert case["spans"] > 1

        assert default_artifact_path(artifact) == f"BENCH_{artifact['run_id']}.json"
        path = save_suite(artifact, out=tmp_path / "BENCH_unit.json")
        assert read_artifact(path) == artifact

    def test_unknown_case_id_rejected_before_any_run(self):
        with pytest.raises(BenchError):
            run_suite(case_ids=["no_such_case"])
