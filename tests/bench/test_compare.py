"""Tests for the artifact comparator and its regression gates."""

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare_artifacts,
    compare_files,
    format_comparison,
    write_artifact,
)
from repro.errors import BenchError


def make_case(wall=10.0, sent_bytes=None, energy=None) -> dict:
    return {
        "wall_seconds": wall,
        "stage_seconds": {},
        "bytes_sent": {"BEES": 1_000_000.0} if sent_bytes is None else sent_bytes,
        "energy_joules": {"BEES/radio": 100.0} if energy is None else energy,
        "eliminations": {},
    }


def make_artifact(cases) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": "synthetic",
        "created_unix": 0,
        "quick": False,
        "env": {},
        "cases": cases,
    }


class TestRegressionGate:
    def test_identical_artifacts_pass(self):
        artifact = make_artifact({"c": make_case()})
        result = compare_artifacts(artifact, make_artifact({"c": make_case()}))
        assert result.ok
        assert result.regressions == []
        (case,) = result.cases
        assert all(delta.relative == 0.0 for delta in case.deltas)

    def test_wall_time_growth_past_threshold_regresses(self):
        baseline = make_artifact({"c": make_case(wall=10.0)})
        candidate = make_artifact({"c": make_case(wall=12.0)})
        result = compare_artifacts(baseline, candidate)
        assert not result.ok
        (case,) = result.regressions
        (delta,) = [d for d in case.deltas if d.regressed]
        assert delta.metric == "wall_seconds"
        assert delta.relative == pytest.approx(0.2)

    def test_growth_within_threshold_passes(self):
        baseline = make_artifact({"c": make_case(wall=10.0)})
        candidate = make_artifact({"c": make_case(wall=10.5)})
        assert compare_artifacts(baseline, candidate).ok

    def test_improvement_is_never_a_regression(self):
        baseline = make_artifact({"c": make_case(wall=10.0)})
        candidate = make_artifact({"c": make_case(wall=1.0)})
        result = compare_artifacts(baseline, candidate)
        assert result.ok
        assert result.cases[0].deltas[0].relative == pytest.approx(-0.9)

    def test_custom_thresholds(self):
        baseline = make_artifact({"c": make_case(wall=10.0)})
        candidate = make_artifact({"c": make_case(wall=10.5)})
        loose = compare_artifacts(baseline, candidate, {"wall_seconds": 0.5})
        strict = compare_artifacts(baseline, candidate, {"wall_seconds": 0.01})
        assert loose.ok
        assert not strict.ok

    def test_unknown_threshold_metric_rejected(self):
        artifact = make_artifact({"c": make_case()})
        with pytest.raises(BenchError):
            compare_artifacts(artifact, artifact, {"latency": 0.1})

    def test_bytes_totals_sum_across_schemes(self):
        baseline = make_artifact(
            {"c": make_case(sent_bytes={"BEES": 1e6, "MRC": 1e6})}
        )
        candidate = make_artifact({"c": make_case(sent_bytes={"BEES": 2.5e6})})
        result = compare_artifacts(baseline, candidate)
        assert not result.ok
        (delta,) = [
            d for d in result.cases[0].deltas if d.metric == "bytes_sent"
        ]
        assert delta.regressed
        assert delta.relative == pytest.approx(0.25)

    def test_tiny_baselines_are_noise_not_regressions(self):
        baseline = make_artifact(
            {"c": make_case(wall=0.01, sent_bytes={"BEES": 10.0},
                            energy={"BEES/radio": 0.1})}
        )
        candidate = make_artifact(
            {"c": make_case(wall=1.0, sent_bytes={"BEES": 1000.0},
                            energy={"BEES/radio": 0.4})}
        )
        assert compare_artifacts(baseline, candidate).ok


class TestCaseSetChanges:
    def test_missing_case_fails_the_gate(self):
        baseline = make_artifact({"a": make_case(), "b": make_case()})
        candidate = make_artifact({"a": make_case()})
        result = compare_artifacts(baseline, candidate)
        assert not result.ok
        assert result.missing_in_candidate == ["b"]

    def test_added_case_is_reported_but_passes(self):
        baseline = make_artifact({"a": make_case()})
        candidate = make_artifact({"a": make_case(), "zz_new": make_case()})
        result = compare_artifacts(baseline, candidate)
        assert result.ok
        assert result.added_in_candidate == ["zz_new"]


class TestFormatAndFiles:
    def test_table_names_the_regressed_metric(self):
        baseline = make_artifact({"slow_case": make_case(wall=10.0)})
        candidate = make_artifact({"slow_case": make_case(wall=20.0)})
        text = format_comparison(compare_artifacts(baseline, candidate))
        assert "slow_case" in text
        assert "REGRESSED" in text
        assert "+100.0%" in text
        assert "1 case(s) regressed" in text

    def test_clean_diff_says_so(self):
        artifact = make_artifact({"c": make_case()})
        text = format_comparison(compare_artifacts(artifact, artifact))
        assert "no regressions" in text
        assert "REGRESSED" not in text

    def test_compare_files_roundtrip(self, tmp_path):
        baseline = make_artifact({"c": make_case(wall=10.0)})
        candidate = make_artifact({"c": make_case(wall=30.0)})
        base_path = write_artifact(baseline, tmp_path / "BENCH_base.json")
        cand_path = write_artifact(candidate, tmp_path / "BENCH_cand.json")
        result = compare_files(base_path, cand_path)
        assert not result.ok

    def test_invalid_artifact_rejected(self):
        good = make_artifact({"c": make_case()})
        with pytest.raises(BenchError):
            compare_artifacts(good, {"schema_version": 999})
