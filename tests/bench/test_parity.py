"""Standalone-vs-registered parity.

Every ``benchmarks/bench_*.py`` stays a plain pytest script; the
registry merely re-exposes the same core through ``run(params)``.  These
tests pin that contract for two cheap cases: calling the module's core
function directly (the standalone path) must yield exactly the numbers
the registered entry point reports, and the core's default arguments
must equal ``PARAMS`` so the full-scale runs agree too.
"""

import importlib
import inspect

import pytest

from repro.bench import load_cases


def load_module(case_id: str):
    (case,) = load_cases([case_id])
    # load_cases put benchmarks/ on sys.path and imported the module
    return importlib.import_module(case.module)


class TestTable1Parity:
    def test_core_defaults_match_registered_params(self):
        module = load_module("table1_space_overhead")
        signature = inspect.signature(module.run_table1)
        assert (
            signature.parameters["sample_images"].default
            == module.PARAMS["sample_images"]
        )

    def test_standalone_numbers_equal_registered_numbers(self):
        module = load_module("table1_space_overhead")
        registered = module.run({"sample_images": 4})
        standalone = module.run_table1(sample_images=4)
        assert set(registered["space"]) == set(standalone)
        for name, data in standalone.items():
            block = registered["space"][name]
            assert block["image_bytes_total"] == int(data["image_bytes_total"])
            for row in data["rows"]:
                feature = block["features"][row.kind]
                assert feature["total_bytes"] == int(row.total_bytes)
                assert feature["fraction_of_sift"] == pytest.approx(
                    row.fraction_of_sift
                )


class TestFigure5Parity:
    def test_core_defaults_match_registered_params(self):
        module = load_module("fig5_compression_bandwidth")
        signature = inspect.signature(module.run_figure5)
        assert signature.parameters["n_images"].default == module.PARAMS["n_images"]

    def test_standalone_numbers_equal_registered_numbers(self):
        module = load_module("fig5_compression_bandwidth")
        registered = module.run({"n_images": 8})
        standalone = module.run_figure5(n_images=8)
        assert registered["baseline_bytes"] == standalone["baseline"]
        assert [
            (point["proportion"], point["bytes"], point["ssim"])
            for point in registered["quality"]
        ] == standalone["quality"]
        assert [
            (point["proportion"], point["bytes"])
            for point in registered["resolution"]
        ] == standalone["resolution"]
