"""Tests for the bench-case registry."""

import pytest

from repro.bench import CASE_SPECS, case_ids, find_benchmarks_dir, load_cases
from repro.errors import BenchError


class TestCaseIds:
    def test_registered_case_count(self):
        ids = case_ids()
        assert len(ids) == 20
        assert len(set(ids)) == len(ids)

    def test_entry_points_are_unique(self):
        # A module may host several cases, but each needs its own entry
        # prefix ("" = the module's default run/PARAMS names).
        entries = [(spec[1], spec[4] if len(spec) > 4 else "") for spec in CASE_SPECS]
        assert len(set(entries)) == len(entries)


class TestFindBenchmarksDir:
    def test_resolves_from_repo_layout(self):
        found = find_benchmarks_dir()
        assert (found / "common.py").is_file()
        assert (found / "bench_table1_space_overhead.py").is_file()

    def test_env_override_wins(self, tmp_path, monkeypatch):
        (tmp_path / "common.py").write_text("")
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert find_benchmarks_dir() == tmp_path

    def test_bad_override_falls_back_to_repo(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "nope"))
        assert (find_benchmarks_dir() / "common.py").is_file()


class TestLoadCases:
    def test_unknown_case_rejected_by_name(self):
        with pytest.raises(BenchError) as excinfo:
            load_cases(["nope"])
        assert "nope" in str(excinfo.value)

    def test_subset_preserves_registry_order(self):
        cases = load_cases(["table1_space_overhead", "fig5_compression_bandwidth"])
        assert [case.case_id for case in cases] == [
            "fig5_compression_bandwidth",
            "table1_space_overhead",
        ]

    def test_loaded_case_shape(self):
        (case,) = load_cases(["table1_space_overhead"])
        assert callable(case.run)
        assert case.figure == "Table I"
        assert case.params == {"sample_images": 10}
        assert case.quick_params == {"sample_images": 4}
        assert case.parameters() == case.params
        assert case.parameters(quick=True) == {"sample_images": 4}

    def test_every_registered_module_loads(self):
        cases = load_cases()
        assert [case.case_id for case in cases] == case_ids()
        for case in cases:
            assert callable(case.run), case.case_id
            assert case.params, case.case_id
            assert case.quick_params, case.case_id
            # quick must actually reduce something, not alias the full set
            assert case.parameters(quick=True) != case.params, case.case_id
