"""Tests for the ``repro bench`` CLI subcommands."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    """One real quick artifact, produced through the CLI itself."""
    path = tmp_path_factory.mktemp("bench") / "BENCH_cli.json"
    code = main(
        ["bench", "run", "--quick",
         "--cases", "table1_space_overhead", "--out", str(path)]
    )
    assert code == 0
    return path


class TestBenchList:
    def test_lists_every_case(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for case_id in ("fig3_bitmap_compression", "table1_space_overhead",
                        "ext_outage", "ablation_eaas"):
            assert case_id in out


class TestBenchRun:
    def test_quick_run_writes_valid_artifact(self, artifact_path, capsys):
        artifact = json.loads(artifact_path.read_text())
        assert artifact["quick"] is True
        assert set(artifact["cases"]) == {"table1_space_overhead"}
        assert artifact["cases"]["table1_space_overhead"]["wall_seconds"] > 0

    def test_unknown_case_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "run", "--cases", "no_such_case"])
        assert "bench run failed" in str(excinfo.value)

    def test_param_requires_a_single_case(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "run", "--param", "n_images=4"])
        assert "exactly one case" in str(excinfo.value)

    def test_malformed_param_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "run", "--cases", "table1_space_overhead",
                  "--param", "nonsense"])
        assert "KEY=VALUE" in str(excinfo.value)

    def test_param_override_reaches_the_case(self, tmp_path, capsys):
        out = tmp_path / "BENCH_p.json"
        code = main(
            ["bench", "run", "--cases", "table1_space_overhead",
             "--param", "sample_images=3", "--out", str(out)]
        )
        assert code == 0
        artifact = json.loads(out.read_text())
        params = artifact["cases"]["table1_space_overhead"]["params"]
        assert params == {"sample_images": 3}


class TestBenchCompare:
    def test_self_compare_passes(self, artifact_path, capsys):
        code = main(["bench", "compare", str(artifact_path), str(artifact_path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, artifact_path, tmp_path, capsys):
        regressed = json.loads(artifact_path.read_text())
        case = regressed["cases"]["table1_space_overhead"]
        case["wall_seconds"] *= 3
        cand_path = tmp_path / "BENCH_slow.json"
        cand_path.write_text(json.dumps(regressed))
        code = main(["bench", "compare", str(artifact_path), str(cand_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "wall_seconds" in out

    def test_threshold_flag_loosens_the_gate(self, artifact_path, tmp_path, capsys):
        regressed = json.loads(artifact_path.read_text())
        regressed["cases"]["table1_space_overhead"]["wall_seconds"] *= 3
        cand_path = tmp_path / "BENCH_slow.json"
        cand_path.write_text(json.dumps(regressed))
        code = main(
            ["bench", "compare", str(artifact_path), str(cand_path),
             "--max-wall-growth", "5.0"]
        )
        assert code == 0

    def test_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "compare", str(tmp_path / "nope.json"),
                  str(tmp_path / "nope.json")])
        assert "bench compare failed" in str(excinfo.value)


class TestBenchReport:
    def test_renders_case_table(self, artifact_path, capsys):
        assert main(["bench", "report", str(artifact_path)]) == 0
        out = capsys.readouterr().out
        assert "table1_space_overhead" in out
        assert "run " in out
        assert "python" in out

    def test_stages_flag_adds_latency_table(self, artifact_path, capsys):
        assert main(["bench", "report", str(artifact_path), "--stages"]) == 0

    def test_invalid_artifact_fails_cleanly(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "report", str(bad)])
        assert "bench report failed" in str(excinfo.value)
