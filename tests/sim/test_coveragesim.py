"""Tests for the coverage experiment driver (small scale)."""

import pytest

from repro.baselines import DirectUpload
from repro.core.client import BeesScheme
from repro.datasets.paris import SyntheticParis
from repro.errors import SimulationError
from repro.imaging.synth import SceneGenerator
from repro.sim.coveragesim import CoverageExperiment


@pytest.fixture(scope="module")
def experiment():
    dataset = SyntheticParis(
        n_images=120,
        n_locations=40,
        seed=2,
        generator=SceneGenerator(height=72, width=96),
    )
    return CoverageExperiment(
        dataset=dataset, n_phones=2, group_size=10, capacity_fraction=0.008
    )


@pytest.fixture(scope="module")
def direct_result(experiment):
    return experiment.run(DirectUpload())


@pytest.fixture(scope="module")
def bees_result(experiment):
    return experiment.run(BeesScheme())


class TestCoverage:
    def test_uploads_bounded_by_dataset(self, direct_result, experiment):
        assert 0 < direct_result.images_uploaded <= len(experiment.dataset)

    def test_locations_bounded_by_uploads(self, direct_result):
        assert direct_result.locations_covered <= direct_result.images_uploaded

    def test_bees_covers_more_locations(self, direct_result, bees_result):
        """The headline Figure-12 result: BEES' energy budget covers
        more unique locations than Direct Upload's."""
        assert bees_result.locations_covered > direct_result.locations_covered

    def test_bees_more_efficient_per_image(self, direct_result, bees_result):
        assert bees_result.locations_per_image > direct_result.locations_per_image

    def test_bees_survives_longer(self, direct_result, bees_result):
        assert bees_result.intervals_survived >= direct_result.intervals_survived


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(SimulationError):
            CoverageExperiment(n_phones=0)
        with pytest.raises(SimulationError):
            CoverageExperiment(group_size=0)
        with pytest.raises(SimulationError):
            CoverageExperiment(capacity_fraction=2.0)
