"""Tests for the simulated smartphone."""

import pytest

from repro.energy import BASELINE, IMAGE_UPLOAD, Battery, WorkCost
from repro.errors import SimulationError
from repro.sim.device import Smartphone


class TestSpend:
    def test_drains_battery_and_records(self):
        device = Smartphone()
        before = device.battery.remaining_joules
        assert device.spend(WorkCost(seconds=1.0, joules=10.0), "work")
        assert device.battery.remaining_joules == pytest.approx(before - 10.0)
        assert device.meter.get("work") == 10.0

    def test_returns_false_on_death(self):
        device = Smartphone()
        device.battery = Battery(capacity_joules=5.0)
        assert not device.spend(WorkCost(seconds=1.0, joules=10.0), "work")
        assert not device.alive

    def test_partial_drain_recorded(self):
        device = Smartphone()
        device.battery = Battery(capacity_joules=5.0)
        device.spend(WorkCost(seconds=1.0, joules=10.0), "work")
        assert device.meter.get("work") == 5.0


class TestUpload:
    def test_charges_radio_energy(self):
        device = Smartphone()
        result = device.upload(100_000, IMAGE_UPLOAD)
        expected = result.seconds * device.profile.radio_power_w
        assert device.meter.get(IMAGE_UPLOAD) == pytest.approx(expected)

    def test_counts_bytes(self):
        device = Smartphone()
        device.upload(123, IMAGE_UPLOAD)
        assert device.uplink.sent_bytes == 123

    def test_dead_device_refuses(self):
        device = Smartphone()
        device.battery = Battery(capacity_joules=1.0, remaining_joules=0.0)
        assert device.upload(100, IMAGE_UPLOAD) is None

    def test_death_mid_transfer_returns_none(self):
        device = Smartphone()
        device.battery = Battery(capacity_joules=0.5)
        assert device.upload(10**6, IMAGE_UPLOAD) is None


class TestIdle:
    def test_baseline_drain(self):
        device = Smartphone()
        before = device.battery.remaining_joules
        device.idle(100.0)
        drained = before - device.battery.remaining_joules
        assert drained == pytest.approx(100.0 * device.profile.baseline_power_w)
        assert device.meter.get(BASELINE) == pytest.approx(drained)

    def test_idle_can_kill(self):
        device = Smartphone()
        device.battery = Battery(capacity_joules=1.0)
        assert not device.idle(10_000.0)

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            Smartphone().idle(-1.0)


class TestEbat:
    def test_tracks_battery_fraction(self):
        device = Smartphone()
        assert device.ebat == 1.0
        device.battery.recharge(0.4)
        assert device.ebat == pytest.approx(0.4)
