"""Tests for the battery-lifetime experiment driver (small scale)."""

import pytest

from repro.baselines import DirectUpload
from repro.core.client import BeesScheme
from repro.errors import SimulationError
from repro.imaging.synth import SceneGenerator
from repro.sim.lifetime import LifetimeExperiment


@pytest.fixture(scope="module")
def experiment():
    # Tiny scale: 6-image groups, 3% of the real battery, short
    # intervals (so upload energy, not idle drain, dominates), small
    # scenes for fast extraction.
    return LifetimeExperiment(
        group_size=6,
        interval_seconds=300.0,
        capacity_fraction=0.03,
        max_groups=40,
        generator=SceneGenerator(height=72, width=96),
    )


@pytest.fixture(scope="module")
def direct_result(experiment):
    return experiment.run(DirectUpload())


@pytest.fixture(scope="module")
def bees_result(experiment):
    return experiment.run(BeesScheme())


class TestTrace:
    def test_starts_full(self, direct_result):
        assert direct_result.trace[0].ebat == 1.0
        assert direct_result.trace[0].minutes == 0.0

    def test_monotone_decreasing(self, direct_result):
        ebats = [point.ebat for point in direct_result.trace]
        assert all(a >= b for a, b in zip(ebats, ebats[1:]))

    def test_ends_empty_or_exhausted(self, direct_result):
        assert direct_result.trace[-1].ebat == pytest.approx(0.0, abs=1e-9)

    def test_time_axis_in_interval_steps(self, direct_result, experiment):
        minutes = [point.minutes for point in direct_result.trace]
        step = experiment.interval_seconds / 60.0
        for index, value in enumerate(minutes):
            assert value == pytest.approx(index * step)


class TestSchemeComparison:
    def test_bees_outlives_direct(self, direct_result, bees_result):
        assert bees_result.lifetime_minutes > direct_result.lifetime_minutes

    def test_bees_completes_more_groups(self, direct_result, bees_result):
        assert bees_result.groups_completed > direct_result.groups_completed

    def test_direct_uploads_everything_in_its_groups(self, direct_result, experiment):
        # Each completed group uploaded all its images.
        assert direct_result.images_uploaded >= (
            direct_result.groups_completed * experiment.group_size
        )

    def test_bees_uploads_fraction_per_group(self, bees_result, experiment):
        # ~50% cross-batch redundancy: far fewer uploads than group size.
        groups_attempted = len(bees_result.trace) - 1
        per_group = bees_result.images_uploaded / max(1, groups_attempted)
        assert per_group < experiment.group_size * 0.8


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(SimulationError):
            LifetimeExperiment(group_size=0)
        with pytest.raises(SimulationError):
            LifetimeExperiment(redundancy_ratio=1.5)
        with pytest.raises(SimulationError):
            LifetimeExperiment(capacity_fraction=0.0)
        with pytest.raises(SimulationError):
            LifetimeExperiment(max_groups=0)
