"""Tests for session telemetry."""

import pytest

from repro.baselines.base import BatchReport
from repro.core.client import BeesScheme
from repro.errors import SimulationError
from repro.sim.device import Smartphone
from repro.sim.session import UploadSession, build_server
from repro.sim.telemetry import TimelineRecorder


def _report(scheme="X", n=5, uploaded=3, energy=40.0):
    report = BatchReport(scheme=scheme, n_images=n)
    report.uploaded_ids = [f"i{k}" for k in range(uploaded)]
    report.energy_by_category = {"image_upload": energy}
    report.sent_bytes = 1000
    return report


class TestRecorder:
    def test_records_rows_in_order(self):
        recorder = TimelineRecorder()
        recorder.record(_report(), 1.0, 0.9)
        recorder.record(_report(), 0.9, 0.85)
        assert len(recorder) == 2
        assert [row.batch_index for row in recorder.rows] == [0, 1]

    def test_row_contents(self):
        recorder = TimelineRecorder()
        row = recorder.record(_report(uploaded=3, energy=40.0), 1.0, 0.9)
        assert row.n_uploaded == 3
        assert row.energy_joules == 40.0
        assert row.ebat_spent == pytest.approx(0.1)

    def test_rejects_inconsistent_battery(self):
        recorder = TimelineRecorder()
        with pytest.raises(SimulationError):
            recorder.record(_report(), 0.5, 0.7)

    def test_series_helpers(self):
        recorder = TimelineRecorder()
        recorder.record(_report(n=10, uploaded=5, energy=40.0), 1.0, 0.9)
        recorder.record(_report(n=10, uploaded=2, energy=20.0), 0.9, 0.85)
        assert recorder.energy_series() == [40.0, 20.0]
        assert recorder.upload_ratio_series() == [0.5, 0.2]
        assert recorder.total_energy_joules() == 60.0
        assert recorder.sent_bytes_series() == [1000, 1000]


class TestExports:
    def test_to_dicts_matches_rows(self):
        recorder = TimelineRecorder()
        recorder.record(_report(scheme="BEES", uploaded=3, energy=40.0), 1.0, 0.9)
        (row,) = recorder.to_dicts()
        assert row["scheme"] == "BEES"
        assert row["n_uploaded"] == 3
        assert row["energy_joules"] == 40.0
        assert row["ebat_before"] == 1.0
        assert row["ebat_after"] == 0.9
        assert row["sent_bytes"] == 1000
        assert row["halted"] is False

    def test_to_csv_round_trips(self, tmp_path):
        import csv

        recorder = TimelineRecorder()
        recorder.record(_report(), 1.0, 0.9)
        recorder.record(_report(), 0.9, 0.85)
        path = tmp_path / "timeline.csv"
        assert recorder.to_csv(path) == 2
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["batch_index"] == "0"
        assert rows[1]["ebat_before"] == "0.9"
        assert set(rows[0]) == set(recorder.to_dicts()[0])


class TestSessionIntegration:
    def test_session_feeds_recorder(self, small_batch_features):
        images, _ = small_batch_features
        recorder = TimelineRecorder()
        scheme = BeesScheme()
        session = UploadSession(
            scheme=scheme,
            device=Smartphone(),
            server=build_server(scheme),
            recorder=recorder,
        )
        session.run([images[:4], images[4:]])
        assert len(recorder) == 2
        assert recorder.rows[0].ebat_before == 1.0
        assert recorder.rows[1].ebat_before == recorder.rows[0].ebat_after

    def test_bees_per_batch_energy_falls_with_battery(self, small_batch_features):
        """The EAAS trajectory at batch granularity: re-running the same
        content at ever-lower charge costs ever less."""
        images, _ = small_batch_features
        recorder = TimelineRecorder()
        for index, ebat in enumerate((1.0, 0.5, 0.1)):
            scheme = BeesScheme()
            device = Smartphone()
            device.battery.recharge(ebat)
            before = device.ebat
            # Fresh ids per run so the (fresh) server sees unique images.
            batch = [
                image.with_bitmap(image.bitmap, image_id=f"r{index}-{image.image_id}")
                for image in images
            ]
            report = scheme.process_batch(device, build_server(scheme), batch)
            recorder.record(report, before, device.ebat)
        series = recorder.energy_series()
        assert series == sorted(series, reverse=True)
