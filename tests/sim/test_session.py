"""Tests for session orchestration."""

import pytest

from repro.baselines import DirectUpload, SmartEye
from repro.core.client import BeesScheme
from repro.energy import Battery
from repro.errors import SimulationError
from repro.sim.device import Smartphone
from repro.sim.session import UploadSession, build_server, scheme_extractor


class TestSchemeExtractor:
    def test_bees_uses_orb(self):
        assert scheme_extractor(BeesScheme()).kind == "orb"

    def test_smarteye_uses_pca_sift(self):
        assert scheme_extractor(SmartEye()).kind == "pca-sift"

    def test_direct_falls_back_to_orb(self):
        assert scheme_extractor(DirectUpload()).kind == "orb"


class TestBuildServer:
    def test_index_kind_matches_scheme(self):
        assert build_server(SmartEye()).index.kind == "pca-sift"
        assert build_server(BeesScheme()).index.kind == "orb"

    def test_seed_images_preloaded(self, scene_image):
        server = build_server(BeesScheme(), [scene_image])
        assert scene_image.image_id in server.store
        assert scene_image.image_id in server.index
        assert server.store.get(scene_image.image_id).received_bytes == 0

    def test_fresh_server_each_call(self):
        assert build_server(BeesScheme()) is not build_server(BeesScheme())


class TestUploadSession:
    def test_runs_batches_and_aggregates(self, small_batch_features):
        images, _ = small_batch_features
        scheme = DirectUpload()
        session = UploadSession(
            scheme=scheme, device=Smartphone(), server=build_server(scheme)
        )
        session.run([images[:4], images[4:]])
        assert len(session.reports) == 2
        assert session.total_uploaded == len(images)
        assert session.total_bytes > 0
        assert session.total_energy_joules > 0

    def test_stops_after_battery_death(self, small_batch_features):
        images, _ = small_batch_features
        scheme = DirectUpload()
        device = Smartphone()
        device.battery = Battery(capacity_joules=60.0)
        session = UploadSession(scheme=scheme, device=device, server=build_server(scheme))
        session.run([images[:4], images[4:]])
        assert len(session.reports) == 1
        assert session.reports[0].halted

    def test_rejects_empty_batch(self):
        scheme = DirectUpload()
        session = UploadSession(
            scheme=scheme, device=Smartphone(), server=build_server(scheme)
        )
        with pytest.raises(SimulationError):
            session.run_batch([])
