"""Tests for report aggregation."""

import pytest

from repro.baselines.base import BatchReport
from repro.sim.metrics import summarize


def _report(n=10, uploaded=4, energy=50.0, sent=1000, seconds=20.0):
    report = BatchReport(scheme="X", n_images=n)
    report.uploaded_ids = [f"i{k}" for k in range(uploaded)]
    report.energy_by_category = {"image_upload": energy}
    report.sent_bytes = sent
    report.total_seconds = seconds
    report.eliminated_cross_batch = ["a"]
    report.eliminated_in_batch = ["b", "c"]
    return report


class TestSummarize:
    def test_single_report(self):
        metrics = summarize([_report()])
        assert metrics.scheme == "X"
        assert metrics.n_images == 10
        assert metrics.n_uploaded == 4
        assert metrics.energy_joules == 50.0
        assert metrics.avg_image_seconds == pytest.approx(2.0)

    def test_multiple_reports_accumulate(self):
        metrics = summarize([_report(), _report()])
        assert metrics.n_images == 20
        assert metrics.n_uploaded == 8
        assert metrics.sent_bytes == 2000
        assert metrics.eliminated_cross_batch == 2
        assert metrics.eliminated_in_batch == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])
