"""Observability under failure: outage bursts and mid-batch aborts.

The happy-path instrumentation is covered by ``test_runtime.py``; these
tests pin down the fault paths — a battery dying mid-batch over an
outage-stricken channel, and a DTN whose buffers overflow — where the
metric/span data is easiest to get wrong (half-recorded stages, bytes
charged for transfers that never finished paying their energy bill).
"""

import pytest

from repro.core.client import BeesScheme
from repro.dtn.node import CarriedImage
from repro.dtn.routing import EpidemicSimulation
from repro.energy import Battery
from repro.network.link import Uplink
from repro.network.outage import OutageChannel
from repro.obs import configure
from repro.sim.device import Smartphone
from repro.sim.session import build_server


def _outage_uplink(seed: int = 3) -> Uplink:
    """A link that is down from the first transfer and rarely recovers."""
    return Uplink(
        channel=OutageChannel(
            outage_probability=1.0, recovery_probability=0.01, seed=seed
        )
    )


class TestOutageAbortMidBatch:
    def test_battery_death_during_outage_keeps_counters_consistent(
        self, small_batch_features
    ):
        images, _ = small_batch_features
        obs = configure()
        device = Smartphone()
        # Enough charge to get partway through the batch, not through it:
        # outage-trickle transfers take hundreds of simulated seconds, and
        # the radio energy for them drains this battery mid-batch.
        device.battery = Battery(capacity_joules=60.0)
        device.uplink = _outage_uplink()
        scheme = BeesScheme()
        report = scheme.process_batch(device, build_server(scheme), images)

        assert report.halted
        assert report.n_uploaded < len(images)
        # Counters describe exactly what the report says happened — the
        # aborted transfer's bytes went over the air, so both sides count
        # them; the per-scheme total equals the link-level total.
        assert obs.sent_bytes.value(scheme="BEES") == report.sent_bytes
        assert obs.link_bytes.value() == report.sent_bytes
        assert obs.images.value(scheme="BEES", outcome="input") == len(images)
        assert (
            obs.images.value(scheme="BEES", outcome="uploaded") == report.n_uploaded
        )
        assert obs.batches.value(scheme="BEES") == 1

    def test_abort_records_only_completed_stage_observations(
        self, small_batch_features
    ):
        images, _ = small_batch_features
        obs = configure()
        device = Smartphone()
        device.battery = Battery(capacity_joules=60.0)
        device.uplink = _outage_uplink()
        scheme = BeesScheme()
        report = scheme.process_batch(device, build_server(scheme), images)

        assert report.halted
        # An upload the battery died inside must not appear as a completed
        # image_upload stage observation.
        uploads = obs.stage_seconds.value(scheme="BEES", stage="image_upload")
        assert uploads.count == report.n_uploaded
        # afe/feature_upload are observed together, once per image that
        # made it through detection (cross-batch-eliminated images count
        # through elimination_seconds; everything else keeps its
        # per_image entry even when SSMM later drops it).
        detected = len(report.eliminated_cross_batch) + len(report.per_image_seconds)
        afe = obs.stage_seconds.value(scheme="BEES", stage="afe")
        feature = obs.stage_seconds.value(scheme="BEES", stage="feature_upload")
        assert afe.count == feature.count == detected

    def test_root_span_closes_and_flags_the_halt(self, small_batch_features):
        images, _ = small_batch_features
        obs = configure()
        device = Smartphone()
        device.battery = Battery(capacity_joules=60.0)
        device.uplink = _outage_uplink()
        scheme = BeesScheme()
        report = scheme.process_batch(device, build_server(scheme), images)

        assert report.halted
        roots = [span for span in obs.tracer.finished if span.name == "bees.batch"]
        assert len(roots) == 1
        assert roots[0].attributes["halted"] is True
        assert roots[0].attributes["n_uploaded"] == report.n_uploaded
        assert roots[0].attributes["bytes_sent"] == report.sent_bytes

    def test_outage_transfers_shift_the_latency_distribution(self):
        obs = configure()
        healthy = Uplink()
        for _ in range(5):
            healthy.transfer(50_000)
        healthy_p50 = obs.link_transfer_seconds.quantile(0.5)

        obs = configure()  # fresh registry for the degraded link
        degraded = _outage_uplink()
        for _ in range(5):
            degraded.transfer(50_000)
        assert obs.link_transfers.value() == 5
        assert obs.link_bytes.value() == 250_000
        assert obs.link_transfer_seconds.quantile(0.5) > healthy_p50


class TestDtnFaultTelemetry:
    @pytest.fixture()
    def carried(self, small_batch_features):
        images, features = small_batch_features
        return [
            CarriedImage(image=image, features=feature_set)
            for image, feature_set in zip(images, features)
        ]

    def test_counters_match_simulation_despite_overflowing_buffers(self, carried):
        obs = configure()
        # capacity 2 with 8 injected images forces drops/rejections — the
        # counters must still reconcile with the simulation's own totals.
        simulation = EpidemicSimulation(
            n_nodes=4, buffer_capacity=2, gateway_probability=0.3, seed=5
        )
        for index, item in enumerate(carried):
            simulation.inject(index % 4, item)
        report = simulation.run(rounds=30)

        assert report.drops + report.rejections > 0  # the fault must bite
        relay = obs.dtn_transmissions.value(kind="relay")
        gateway = obs.dtn_transmissions.value(kind="gateway")
        assert relay + gateway == report.transmissions == simulation.transmissions
        assert obs.dtn_delivered.value() == len(simulation.delivered)
        assert gateway == len(simulation.delivered)

    def test_run_span_reports_delivery_attributes(self, carried):
        obs = configure()
        simulation = EpidemicSimulation(
            n_nodes=4, buffer_capacity=2, gateway_probability=0.3, seed=5
        )
        for index, item in enumerate(carried):
            simulation.inject(index % 4, item)
        report = simulation.run(rounds=30)

        spans = [span for span in obs.tracer.finished if span.name == "dtn.run"]
        assert len(spans) == 1
        assert spans[0].attributes["rounds"] == 30
        assert spans[0].attributes["delivered"] == len(simulation.delivered)
        assert spans[0].attributes["transmissions"] == report.transmissions
