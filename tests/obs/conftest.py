"""Observability test fixtures: never leak an enabled global context."""

import pytest

from repro.obs import disable


@pytest.fixture(autouse=True)
def reset_observability():
    """Leave the process-wide context disabled after every test."""
    yield
    disable()
