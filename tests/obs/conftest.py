"""Observability test fixtures: never leak an enabled global context."""

import pytest

from repro.obs import disable, disable_journal


@pytest.fixture(autouse=True)
def reset_observability():
    """Leave the process-wide context and journal disabled after every test."""
    yield
    disable_journal()
    disable()
