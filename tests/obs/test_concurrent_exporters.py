"""Exporters under concurrent writers: snapshots must stay consistent.

The regression this guards: ``generate_latest`` used to read a
histogram's buckets, sum, and count in separate passes, so a writer
landing between passes produced exposition text whose ``+Inf`` bucket,
``_count``, and ``_sum`` disagreed.  Both exporters now render from one
locked snapshot; sixteen hammering threads should never be observable.
"""

import json
import threading

from repro.obs import (
    configure,
    generate_latest,
    parse_prometheus,
    write_jsonl,
)

N_THREADS = 16
N_WRITES = 200


def _hammer(obs, barrier, thread_index):
    barrier.wait()
    for i in range(N_WRITES):
        obs.sent_bytes.inc(1, scheme=f"scheme-{thread_index % 4}")
        obs.stage_seconds.observe(
            0.01 * (i % 7), scheme="BEES", stage=f"stage-{thread_index % 3}"
        )
        obs.fleet_queue_depth.set(float(i))
        with obs.tracer.span("bees.batch", writer=thread_index):
            pass


def _run_writers(obs, also=None):
    barrier = threading.Barrier(N_THREADS + (1 if also else 0))
    threads = [
        threading.Thread(target=_hammer, args=(obs, barrier, index), daemon=True)
        for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    result = also(barrier) if also else None
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    return result


class TestPrometheusUnderConcurrency:
    def test_final_exposition_is_complete_and_parses(self):
        obs = configure()
        _run_writers(obs)
        text = generate_latest(obs.registry)
        samples = parse_prometheus(text)
        total = sum(
            sample["value"]
            for sample in samples
            if sample["name"] == "bees_bytes_sent_total"
        )
        assert total == N_THREADS * N_WRITES

    def test_histogram_series_are_internally_consistent(self):
        obs = configure()

        def read_during(barrier):
            barrier.wait()
            texts = []
            for _ in range(20):
                texts.append(generate_latest(obs.registry))
            return texts

        texts = _run_writers(obs, also=read_during)
        # Every mid-flight snapshot must satisfy the histogram
        # invariants: +Inf bucket == _count, buckets non-decreasing.
        for text in texts:
            buckets = {}
            counts = {}
            for sample in parse_prometheus(text):
                if sample["name"] == "bees_stage_seconds_bucket":
                    key = tuple(
                        sorted(
                            (k, v)
                            for k, v in sample["labels"].items()
                            if k != "le"
                        )
                    )
                    buckets.setdefault(key, []).append(
                        (float(sample["labels"]["le"]), sample["value"])
                    )
                elif sample["name"] == "bees_stage_seconds_count":
                    key = tuple(sorted(sample["labels"].items()))
                    counts[key] = sample["value"]
            for key, series in buckets.items():
                series.sort()
                values = [value for _, value in series]
                assert values == sorted(values), "buckets must be cumulative"
                assert values[-1] == counts[key], "+Inf bucket == count"

    def test_jsonl_export_has_no_torn_lines(self, tmp_path):
        obs = configure()

        def export_during(barrier):
            barrier.wait()
            paths = []
            for index in range(10):
                path = tmp_path / f"spans-{index}.jsonl"
                write_jsonl(obs.tracer, path)
                paths.append(path)
            return paths

        paths = _run_writers(obs, also=export_during)
        final = tmp_path / "final.jsonl"
        n_final = write_jsonl(obs.tracer, final)
        assert n_final == N_THREADS * N_WRITES
        for path in paths + [final]:
            for line in path.read_text().splitlines():
                record = json.loads(line)  # a torn line would throw
                assert record["type"] == "span"
                assert record["name"] == "bees.batch"
