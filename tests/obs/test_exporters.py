"""Tests for the JSONL, Prometheus, and console exporters."""

import json

from repro.obs.exporters import (
    console_summary,
    generate_latest,
    parse_prometheus,
    read_jsonl,
    render_metrics_file,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("bees_bytes_sent_total", "bytes", ("scheme",))
    counter.inc(1024, scheme="BEES")
    counter.inc(4096, scheme="Direct Upload")
    gauge = registry.gauge("bees_index_size", "entries")
    gauge.set(17)
    histogram = registry.histogram(
        "bees_stage_seconds", "seconds", ("stage",), buckets=(0.1, 1.0)
    )
    histogram.observe(0.05, stage="afe")
    histogram.observe(0.5, stage="afe")
    histogram.observe(5.0, stage="aiu")
    return registry


class TestJsonl:
    def test_round_trip_preserves_span_fields(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", scheme="BEES"):
            with tracer.span("inner", image_id="img-0"):
                pass
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(tracer, path) == 2
        records = read_jsonl(path)
        assert len(records) == 2
        for record in records:
            assert record["type"] == "span"
            for key in ("name", "span_id", "parent_id", "start", "duration"):
                assert key in record
        by_name = {record["name"]: record for record in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_each_line_is_standalone_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        for line in path.read_text().splitlines():
            json.loads(line)


class TestPrometheus:
    def test_exposition_structure(self):
        text = generate_latest(populated_registry())
        assert "# HELP bees_bytes_sent_total bytes" in text
        assert "# TYPE bees_bytes_sent_total counter" in text
        assert 'bees_bytes_sent_total{scheme="BEES"} 1024' in text
        assert 'bees_bytes_sent_total{scheme="Direct Upload"} 4096' in text
        assert "# TYPE bees_index_size gauge" in text
        assert "bees_index_size 17" in text

    def test_histogram_emits_cumulative_buckets(self):
        text = generate_latest(populated_registry())
        assert 'bees_stage_seconds_bucket{le="0.1",stage="afe"} 1' in text
        assert 'bees_stage_seconds_bucket{le="1",stage="afe"} 2' in text
        assert 'bees_stage_seconds_bucket{le="+Inf",stage="afe"} 2' in text
        assert 'bees_stage_seconds_count{stage="afe"} 2' in text
        assert 'bees_stage_seconds_bucket{le="+Inf",stage="aiu"} 1' in text

    def test_parse_round_trip(self):
        registry = populated_registry()
        samples = parse_prometheus(generate_latest(registry))
        lookup = {
            (sample["name"], tuple(sorted(sample["labels"].items()))): sample
            for sample in samples
        }
        bees = lookup[("bees_bytes_sent_total", (("scheme", "BEES"),))]
        assert bees["value"] == 1024
        assert bees["type"] == "counter"
        inf_bucket = lookup[
            ("bees_stage_seconds_bucket", (("le", "+Inf"), ("stage", "afe")))
        ]
        assert inf_bucket["value"] == 2
        assert inf_bucket["type"] == "histogram"

    def test_write_and_render_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(populated_registry(), path)
        rendered = render_metrics_file(path)
        assert "bees_bytes_sent_total" in rendered
        assert "scheme=BEES" in rendered

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "h", ("name",))
        counter.inc(1, name='quo"te')
        text = generate_latest(registry)
        assert r'name="quo\"te"' in text
        samples = parse_prometheus(text)
        assert samples[0]["labels"]["name"] == 'quo"te'


class TestConsoleSummary:
    def test_renders_table(self):
        summary = console_summary(populated_registry())
        assert "bees_bytes_sent_total" in summary
        assert "scheme=BEES" in summary
        assert "n=2" in summary  # histogram series summary

    def test_empty_registry(self):
        assert "no metrics" in console_summary(MetricsRegistry())
