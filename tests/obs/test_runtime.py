"""Tests for the process-wide observability context and the pipeline
instrumentation that reports through it."""

import pytest

from repro.baselines import DirectUpload
from repro.baselines.base import BatchReport
from repro.core.client import BeesScheme
from repro.obs import (
    NULL_SPAN,
    PIPELINE_STAGES,
    configure,
    disable,
    generate_latest,
    get_obs,
)
from repro.sim.device import Smartphone
from repro.sim.session import build_server


class TestGlobalContext:
    def test_disabled_by_default(self):
        obs = disable()
        assert get_obs() is obs
        assert not obs.enabled
        assert obs.span("anything") is NULL_SPAN

    def test_configure_enables_and_replaces(self):
        obs = configure()
        assert obs.enabled
        assert get_obs() is obs
        replacement = configure()
        assert get_obs() is replacement
        assert replacement is not obs

    def test_flush_writes_both_exports(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        obs = configure(trace_path=trace_path, metrics_path=metrics_path)
        with obs.span("one"):
            pass
        obs.sent_bytes.inc(10, scheme="BEES")
        written = obs.flush()
        assert {str(trace_path), str(metrics_path)} == set(written)
        assert trace_path.read_text().count("\n") == 1
        assert "bees_bytes_sent_total" in metrics_path.read_text()

    def test_exporters_listing(self, tmp_path):
        assert disable().exporters() == []
        obs = configure(trace_path=tmp_path / "t.jsonl")
        assert obs.exporters() == [f"jsonl({tmp_path / 't.jsonl'})"]


class TestBatchReportHook:
    def test_report_folds_into_metrics(self):
        obs = configure()
        report = BatchReport(scheme="BEES", n_images=10)
        report.uploaded_ids = ["a", "b"]
        report.eliminated_cross_batch = ["c", "d", "e"]
        report.eliminated_in_batch = ["f"]
        report.sent_bytes = 2048
        report.energy_by_category = {"image_upload": 5.0, "compression": 1.5}
        obs.observe_batch_report(report)
        assert obs.sent_bytes.value(scheme="BEES") == 2048
        assert obs.energy_joules.value(scheme="BEES", category="image_upload") == 5.0
        assert obs.eliminations.value(scheme="BEES", kind="cross") == 3
        assert obs.eliminations.value(scheme="BEES", kind="in_batch") == 1
        assert obs.images.value(scheme="BEES", outcome="input") == 10
        assert obs.images.value(scheme="BEES", outcome="uploaded") == 2
        assert obs.batches.value(scheme="BEES") == 1


class TestPipelineInstrumentation:
    @pytest.fixture(scope="class")
    def batch(self, small_batch_features):
        images, _ = small_batch_features
        return images

    def test_bees_batch_records_spans_and_stage_metrics(self, batch):
        obs = configure()
        scheme = BeesScheme()
        scheme.process_batch(Smartphone(), build_server(scheme), batch)

        names = {span.name for span in obs.tracer.finished}
        assert {"bees.batch", "bees.afe", "bees.feature_upload", "bees.cbrd",
                "bees.ssmm", "bees.aiu", "bees.image_upload"} <= names

        by_id = {span.span_id: span for span in obs.tracer.finished}
        roots = [span for span in obs.tracer.finished if span.name == "bees.batch"]
        assert len(roots) == 1
        for span in obs.tracer.finished:
            if span.name.startswith("bees.") and span.name != "bees.batch":
                assert by_id[span.parent_id].name == "bees.batch"

        for stage in ("afe", "feature_upload", "aiu", "image_upload"):
            assert stage in PIPELINE_STAGES
            series = obs.stage_seconds.value(scheme="BEES", stage=stage)
            assert series.count > 0, stage

        assert obs.sent_bytes.value(scheme="BEES") > 0
        assert obs.energy_joules.value(scheme="BEES", category="image_upload") > 0
        assert obs.index_queries.value() == len(batch)
        assert obs.index_size.value() > 0
        assert obs.link_transfers.value() > 0
        assert obs.link_bytes.value() == obs.sent_bytes.value(scheme="BEES")

    def test_direct_upload_reports_through_shared_hook(self, batch):
        obs = configure()
        scheme = DirectUpload()
        scheme.process_batch(Smartphone(), build_server(scheme), batch)
        assert obs.batches.value(scheme="Direct Upload") == 1
        assert obs.sent_bytes.value(scheme="Direct Upload") > 0
        assert obs.images.value(scheme="Direct Upload", outcome="uploaded") == len(
            batch
        )

    def test_disabled_pipeline_records_nothing(self, batch):
        disable()
        scheme = BeesScheme()
        scheme.process_batch(Smartphone(), build_server(scheme), batch)
        obs = get_obs()
        assert len(obs.tracer) == 0
        assert obs.sent_bytes.value(scheme="BEES") == 0
        assert generate_latest(obs.registry).count("bees_stage_seconds_bucket") == 0
