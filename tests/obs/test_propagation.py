"""Cross-thread trace propagation: the fleet's span tree must connect.

Regression guard for the capture/attach protocol: before it, spans
opened on pool threads in ``--mode concurrent`` had no parent, so a
trace of a concurrent fleet run shattered into per-device fragments and
"time per round" rollups silently dropped every device span.
"""

import threading

import pytest

from repro.fleet import FleetRunner
from repro.obs import configure
from repro.obs.tracer import EMPTY_CONTEXT, TraceContext, Tracer


class TestCaptureAttach:
    def test_capture_on_empty_stack_is_the_shared_empty_context(self):
        tracer = Tracer()
        assert tracer.current_context() is EMPTY_CONTEXT
        # attaching it is a harmless no-op
        with tracer.attach(EMPTY_CONTEXT):
            with tracer.span("child"):
                pass
        assert tracer.finished[-1].parent_id is None

    def test_attached_context_parents_worker_spans(self):
        tracer = Tracer()
        captured = {}

        def worker(context: TraceContext):
            with tracer.attach(context):
                with tracer.span("worker.job"):
                    with tracer.span("worker.inner"):
                        pass

        with tracer.span("coordinator") as parent:
            thread = threading.Thread(
                target=worker, args=(tracer.current_context(),)
            )
            thread.start()
            thread.join(timeout=10)
            captured["parent"] = parent

        spans = {span.name: span for span in tracer.finished}
        assert spans["worker.job"].parent_id == captured["parent"].span_id
        assert spans["worker.inner"].parent_id == spans["worker.job"].span_id

    def test_attach_does_not_close_the_foreign_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            context = tracer.current_context()
            with tracer.attach(context):
                pass
            # still open on this thread after the attach block closed
            assert tracer.active is context.span

    def test_disabled_tracer_attach_is_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.current_context() is EMPTY_CONTEXT
        with tracer.attach(EMPTY_CONTEXT):
            pass  # NULL_SPAN path: nothing recorded
        assert tracer.finished == []


@pytest.mark.parametrize("mode", ["sequential", "concurrent"])
class TestFleetSpanTree:
    def test_span_tree_is_connected(self, mode):
        obs = configure()
        FleetRunner(
            n_devices=3, n_rounds=2, batch_size=4, n_shards=2, mode=mode
        ).run()
        spans = obs.tracer.snapshot_finished()
        by_id = {span.span_id: span for span in spans}
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)

        roots = [span for span in by_name["fleet.run"]]
        assert len(roots) == 1
        root = roots[0]

        # every fleet.device span parents into a fleet.round span,
        # every fleet.round into the fleet.run root
        assert len(by_name["fleet.device"]) == 3 * 2
        for device_span in by_name["fleet.device"]:
            parent = by_id.get(device_span.parent_id)
            assert parent is not None and parent.name == "fleet.round", (
                mode, device_span.parent_id,
            )
        for round_span in by_name["fleet.round"]:
            assert round_span.parent_id == root.span_id

        # the pipeline spans opened inside the pool thread climb to the
        # same root: the tree has exactly one connected component
        orphans = []
        for span in spans:
            node = span
            hops = 0
            while node.parent_id is not None and hops < 100:
                node = by_id.get(node.parent_id)
                assert node is not None, f"dangling parent under {mode}"
                hops += 1
            if node.span_id != root.span_id:
                orphans.append(span.name)
        assert not orphans, (mode, sorted(set(orphans)))

        # and the BEES pipeline actually ran inside device spans
        assert "bees.batch" in by_name
        for batch_span in by_name["bees.batch"]:
            parent = by_id.get(batch_span.parent_id)
            assert parent is not None and parent.name == "fleet.device"
