"""Tests for the streaming windowed aggregation layer."""

import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import configure
from repro.obs.live import (
    DEFAULT_CAPACITY,
    LiveSampler,
    RingBuffer,
    StreamingAggregator,
    series_key,
)


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            RingBuffer(0)

    def test_default_capacity(self):
        assert RingBuffer().capacity == DEFAULT_CAPACITY

    def test_evicts_oldest(self):
        ring = RingBuffer(2)
        for t in range(3):
            ring.append(float(t), float(t * 10))
        assert ring.points() == [(1.0, 10.0), (2.0, 20.0)]
        assert ring.values() == [10.0, 20.0]
        assert ring.latest() == 20.0
        assert len(ring) == 2

    def test_empty_reads(self):
        ring = RingBuffer(4)
        assert ring.latest() is None
        assert ring.window(10) == []
        assert ring.mean(10) == 0.0
        assert bool(ring)  # truthiness is existence, not emptiness

    def test_window_is_trailing_and_inclusive(self):
        ring = RingBuffer(8)
        for t in (0.0, 5.0, 10.0):
            ring.append(t, t)
        assert ring.window(5.0) == [5.0, 10.0]
        assert ring.window(5.0, now=20.0) == []
        assert ring.mean(5.0) == pytest.approx(7.5)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("queue_depth") == "queue_depth"
        assert series_key("queue_depth", {}) == "queue_depth"

    def test_labels_sort(self):
        key = series_key("stage_p99", {"stage": "afe", "scheme": "BEES"})
        assert key == "stage_p99{scheme=BEES,stage=afe}"


class TestStreamingAggregator:
    def test_time_must_move_forward(self):
        aggregator = StreamingAggregator(configure())
        aggregator.sample(now=10.0)
        with pytest.raises(ObservabilityError):
            aggregator.sample(now=9.0)

    def test_same_instant_tick_is_a_noop(self):
        aggregator = StreamingAggregator(configure())
        aggregator.sample(now=10.0)
        assert aggregator.sample(now=10.0) == {}

    def test_counter_deltas_become_rates(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        obs.sent_bytes.inc(500, scheme="BEES")
        aggregator.sample(now=0.0)  # baseline: swallows pre-existing totals
        obs.sent_bytes.inc(1000, scheme="BEES")
        obs.energy_joules.inc(30, scheme="BEES", category="cpu")
        obs.energy_joules.inc(20, scheme="BEES", category="radio")
        appended = aggregator.sample(now=10.0)
        assert appended[series_key("goodput_bytes_per_s", {"scheme": "BEES"})] == (
            pytest.approx(100.0)
        )
        # energy sums across categories before differencing
        assert appended[series_key("joules_per_s", {"scheme": "BEES"})] == (
            pytest.approx(5.0)
        )

    def test_uploads_rate_counts_only_uploaded_outcome(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        aggregator.sample(now=0.0)
        obs.images.inc(40, scheme="BEES", outcome="input")
        obs.images.inc(10, scheme="BEES", outcome="uploaded")
        appended = aggregator.sample(now=10.0)
        assert appended[series_key("uploads_per_s", {"scheme": "BEES"})] == (
            pytest.approx(1.0)
        )

    def test_cache_hit_rate_is_windowed(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        obs.kernel_cache_events.inc(90, event="hit")  # all-time: 90 hits
        aggregator.sample(now=0.0)
        obs.kernel_cache_events.inc(1, event="hit")
        obs.kernel_cache_events.inc(3, event="miss")
        appended = aggregator.sample(now=1.0)
        # the window saw 1 hit / 4 lookups, not the all-time 91/94
        assert appended["cache_hit_rate"] == pytest.approx(0.25)

    def test_no_lookups_appends_no_hit_rate(self):
        aggregator = StreamingAggregator(configure())
        aggregator.sample(now=0.0)
        assert "cache_hit_rate" not in aggregator.sample(now=1.0)

    def test_gauges_pass_through_every_sample(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        obs.fleet_queue_depth.set(7)
        obs.shard_entries.set(42, shard="0")
        appended = aggregator.sample(now=0.0)
        assert appended["queue_depth"] == 7.0
        assert appended[series_key("shard_entries", {"shard": "0"})] == 42.0

    def test_windowed_stage_quantiles_reflect_the_delta(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        # old observations: all tiny
        for _ in range(50):
            obs.stage_seconds.observe(0.01, scheme="BEES", stage="afe")
        aggregator.sample(now=0.0)
        # window: all large — a cumulative histogram would still report
        # a small p50, the windowed one must not
        for _ in range(10):
            obs.stage_seconds.observe(20.0, scheme="BEES", stage="afe")
        appended = aggregator.sample(now=1.0)
        key = series_key("stage_p50", {"scheme": "BEES", "stage": "afe"})
        assert appended[key] > 1.0
        p99_key = series_key("stage_p99", {"scheme": "BEES", "stage": "afe"})
        assert appended[p99_key] >= appended[key]

    def test_quiet_window_appends_no_quantiles(self):
        obs = configure()
        obs.stage_seconds.observe(0.5, scheme="BEES", stage="afe")
        aggregator = StreamingAggregator(obs)
        aggregator.sample(now=0.0)
        appended = aggregator.sample(now=1.0)
        assert not any(key.startswith("stage_p") for key in appended)

    def test_device_spans_become_per_device_series(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        aggregator.sample(now=0.0)
        with obs.tracer.span("fleet.device", device="dev-1", n_uploaded=3):
            pass
        with obs.tracer.span("fleet.device", device="dev-1", n_uploaded=2):
            pass
        with obs.tracer.span("other.span", device="dev-9", n_uploaded=9):
            pass
        appended = aggregator.sample(now=1.0)
        assert appended[series_key("device_uploads", {"device": "dev-1"})] == 5.0
        assert series_key("device_uploads", {"device": "dev-9"}) not in appended
        assert appended[series_key("device_seconds", {"device": "dev-1"})] >= 0.0

    def test_span_cursor_never_double_counts(self):
        obs = configure()
        aggregator = StreamingAggregator(obs)
        aggregator.sample(now=0.0)
        with obs.tracer.span("fleet.device", device="d", n_uploaded=1):
            pass
        aggregator.sample(now=1.0)
        appended = aggregator.sample(now=2.0)
        assert series_key("device_uploads", {"device": "d"}) not in appended
        ring = aggregator.get("device_uploads", device="d")
        assert ring.values() == [1.0]

    def test_get_latest_and_snapshot(self):
        obs = configure()
        aggregator = StreamingAggregator(obs, capacity=4)
        obs.fleet_queue_depth.set(3)
        aggregator.sample(now=0.0)
        assert aggregator.get("queue_depth").latest() == 3.0
        assert aggregator.get("nope") is None
        assert aggregator.latest()["queue_depth"] == 3.0
        assert aggregator.snapshot()["queue_depth"] == [(0.0, 3.0)]


class TestLiveSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            LiveSampler(interval=0)

    def test_start_samples_a_baseline_then_ticks(self):
        obs = configure()
        obs.fleet_queue_depth.set(1)
        sampler = LiveSampler(StreamingAggregator(obs), interval=0.01)
        with sampler:
            assert sampler.running
            ring = sampler.aggregator.get("queue_depth")
            assert ring is not None and ring.latest() == 1.0
            deadline = time.monotonic() + 5
            while len(ring) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(ring) >= 3
        assert not sampler.running

    def test_double_start_rejected(self):
        sampler = LiveSampler(StreamingAggregator(configure()), interval=0.05)
        with sampler:
            with pytest.raises(ObservabilityError):
                sampler.start()
