"""Tests for declarative SLOs: spec parsing, artifact + burn-rate checks."""

import json
import math

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs import configure
from repro.obs.live import StreamingAggregator
from repro.obs.slo import (
    SPEC_VERSION,
    BurnWindow,
    Slo,
    burn_rate,
    evaluate_artifact,
    evaluate_live,
    format_results,
    load_spec,
    parse_spec,
)

COMMITTED_SPEC = "slo/bees_slo.json"
COMMITTED_BASELINE = "benchmarks/baselines/BENCH_baseline_quick.json"


def _spec(*slos: dict) -> dict:
    return {"version": SPEC_VERSION, "slos": list(slos)}


def _slo(**overrides: object) -> dict:
    raw = {
        "name": "delay-p99",
        "indicator": {
            "source": "stage_quantile",
            "case": "fig11_delay",
            "series": "BEES/image_upload",
            "quantile": "p99",
        },
        "objective": {"max": 45.0},
    }
    raw.update(overrides)
    return raw


ARTIFACT = {
    "cases": {
        "fig11_delay": {
            "wall_seconds": 2.5,
            "stage_seconds": {
                "BEES/image_upload": {"p50": 10.0, "p99": 30.0, "count": 16},
            },
            "bytes_sent": {"BEES": 100.0, "Direct Upload": 400.0},
            "eliminations": {"BEES/cross": 10.0, "BEES/in_batch": 6.0},
            "result": {"coverage": {"BEES": {"locations_per_image": 1.0}}},
        }
    }
}


class TestSpecParsing:
    def test_committed_spec_loads(self):
        spec = load_spec(COMMITTED_SPEC)
        assert len(spec) >= 5
        assert spec.source == COMMITTED_SPEC
        assert any(slo.live is not None for slo in spec)

    def test_missing_file(self):
        with pytest.raises(ObservabilityError, match="no such SLO spec"):
            load_spec("nope/missing.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            load_spec(path)

    def test_top_level_must_be_object(self):
        with pytest.raises(ObservabilityError):
            parse_spec([1, 2])

    def test_version_gate(self):
        with pytest.raises(ObservabilityError, match="version"):
            parse_spec({"version": 99, "slos": [_slo()]})

    def test_empty_slos_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_spec({"version": SPEC_VERSION, "slos": []})

    def test_unknown_indicator_source(self):
        bad = _slo(indicator={"source": "vibes", "case": "x"})
        with pytest.raises(ObservabilityError, match="source"):
            parse_spec(_spec(bad))

    def test_objective_required(self):
        with pytest.raises(ObservabilityError, match="objective"):
            parse_spec(_spec(_slo(objective={})))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate"):
            parse_spec(_spec(_slo(), _slo()))

    def test_live_only_slo_needs_no_indicator(self):
        raw = {
            "name": "queue",
            "objective": {"max": 64},
            "live": {
                "series": "queue_depth",
                "target": 0.9,
                "windows": [{"short_s": 60, "long_s": 600, "max_burn_rate": 3.0}],
            },
        }
        spec = parse_spec(_spec(raw))
        assert spec.slos[0].indicator == {}
        assert spec.slos[0].live.target == 0.9

    def test_live_target_must_be_fractional(self):
        raw = _slo(live={
            "series": "s", "target": 1.0,
            "windows": [{"short_s": 1, "long_s": 2, "max_burn_rate": 1.0}],
        })
        with pytest.raises(ObservabilityError, match="target"):
            parse_spec(_spec(raw))

    def test_burn_window_ordering_enforced(self):
        with pytest.raises(ObservabilityError):
            BurnWindow(short_seconds=300, long_seconds=30, max_burn_rate=1.0)
        with pytest.raises(ObservabilityError):
            BurnWindow(short_seconds=30, long_seconds=300, max_burn_rate=0.0)


class TestObjective:
    def test_within_bounds(self):
        slo = Slo(name="s", indicator={}, maximum=10.0, minimum=1.0)
        assert slo.within(5.0)
        assert not slo.within(0.5)
        assert not slo.within(11.0)
        assert not slo.within(math.nan)
        assert slo.objective_text() == ">= 1 and <= 10"


class TestArtifactEvaluation:
    def test_stage_quantile_passes(self):
        spec = parse_spec(_spec(_slo()))
        (result,) = evaluate_artifact(spec, ARTIFACT)
        assert result.ok
        assert result.value == 30.0

    def test_regressed_quantile_fails(self):
        spec = parse_spec(_spec(_slo(objective={"max": 20.0})))
        (result,) = evaluate_artifact(spec, ARTIFACT)
        assert not result.ok

    def test_missing_case_fails_not_skips(self):
        slo = _slo(indicator={
            "source": "stage_quantile", "case": "gone", "series": "x",
        })
        (result,) = evaluate_artifact(parse_spec(_spec(slo)), ARTIFACT)
        assert not result.ok
        assert math.isnan(result.value)
        assert "gone" in result.detail

    def test_case_total_with_prefix(self):
        slo = _slo(
            name="elims",
            indicator={
                "source": "case_total",
                "case": "fig11_delay",
                "field": "eliminations",
                "prefix": "BEES",
            },
            objective={"min": 8},
        )
        (result,) = evaluate_artifact(parse_spec(_spec(slo)), ARTIFACT)
        assert result.ok
        assert result.value == 16.0

    def test_ratio(self):
        slo = _slo(
            name="bw",
            indicator={
                "source": "ratio",
                "case": "fig11_delay",
                "field": "bytes_sent",
                "numerator_prefix": "BEES",
                "denominator_prefix": "Direct Upload",
            },
            objective={"max": 0.5},
        )
        (result,) = evaluate_artifact(parse_spec(_spec(slo)), ARTIFACT)
        assert result.ok
        assert result.value == pytest.approx(0.25)

    def test_result_value_path(self):
        slo = _slo(
            name="coverage",
            indicator={
                "source": "result_value",
                "case": "fig11_delay",
                "path": ["coverage", "BEES", "locations_per_image"],
            },
            objective={"min": 0.95},
        )
        (result,) = evaluate_artifact(parse_spec(_spec(slo)), ARTIFACT)
        assert result.ok and result.value == 1.0

    def test_broken_result_path_fails(self):
        slo = _slo(
            name="coverage",
            indicator={
                "source": "result_value",
                "case": "fig11_delay",
                "path": ["coverage", "MRC"],
            },
            objective={"min": 0.95},
        )
        (result,) = evaluate_artifact(parse_spec(_spec(slo)), ARTIFACT)
        assert not result.ok
        assert "MRC" in result.detail

    def test_wall_seconds(self):
        slo = _slo(
            name="wall",
            indicator={"source": "wall_seconds", "case": "fig11_delay"},
            objective={"max": 60},
        )
        (result,) = evaluate_artifact(parse_spec(_spec(slo)), ARTIFACT)
        assert result.ok and result.value == 2.5

    def test_live_only_slos_are_skipped(self):
        raw = {
            "name": "queue",
            "objective": {"max": 64},
            "live": {
                "series": "queue_depth",
                "windows": [{"short_s": 1, "long_s": 2, "max_burn_rate": 1.0}],
            },
        }
        assert evaluate_artifact(parse_spec(_spec(raw)), ARTIFACT) == []

    def test_committed_spec_passes_committed_baseline(self):
        spec = load_spec(COMMITTED_SPEC)
        artifact = json.loads(open(COMMITTED_BASELINE).read())
        results = evaluate_artifact(spec, artifact)
        assert results, "expected artifact-bound SLOs"
        failing = [r.name for r in results if not r.ok]
        assert not failing, failing

    def test_format_results_renders_verdicts(self):
        spec = parse_spec(_spec(_slo()))
        text = format_results(evaluate_artifact(spec, ARTIFACT))
        assert "PASS" in text and "delay-p99" in text
        assert format_results([]) == "(no SLOs evaluated)"


def _live_slo(max_value=1.0, target=0.9, short_s=10, long_s=100, rate=1.0) -> Slo:
    spec = parse_spec(_spec({
        "name": "live",
        "objective": {"max": max_value},
        "live": {
            "series": "queue_depth",
            "target": target,
            "windows": [
                {"short_s": short_s, "long_s": long_s, "max_burn_rate": rate}
            ],
        },
    }))
    return spec.slos[0]


class TestBurnRate:
    def test_empty_window_burns_nothing(self):
        assert burn_rate([], _live_slo()) == 0.0

    def test_rate_scales_error_fraction_by_budget(self):
        slo = _live_slo(max_value=1.0, target=0.9)
        # half the samples violate; budget is 10% -> burn rate 5x
        assert burn_rate([0.5, 2.0], slo) == pytest.approx(5.0)
        assert burn_rate([0.5, 0.5], slo) == 0.0


class TestLiveEvaluation:
    def _aggregator_with(self, points) -> StreamingAggregator:
        aggregator = StreamingAggregator(configure())
        ring = aggregator._buffer("queue_depth")
        for t, v in points:
            ring.append(t, v)
        return aggregator

    def test_empty_series_passes(self):
        spec = parse_spec(_spec({
            "name": "live", "objective": {"max": 1.0},
            "live": {
                "series": "queue_depth", "target": 0.9,
                "windows": [{"short_s": 10, "long_s": 100, "max_burn_rate": 1.0}],
            },
        }))
        (result,) = evaluate_live(spec, self._aggregator_with([]), now=0.0)
        assert result.ok
        assert math.isnan(result.value)

    def test_fires_only_when_both_windows_burn(self):
        spec = parse_spec(_spec({
            "name": "live", "objective": {"max": 1.0},
            "live": {
                "series": "queue_depth", "target": 0.9,
                "windows": [{"short_s": 10, "long_s": 100, "max_burn_rate": 2.0}],
            },
        }))
        # long window healthy (90 good samples), short window all bad:
        # short burn 10x, long burn ~1x -> must NOT fire
        points = [(float(t), 0.5) for t in range(90)]
        points += [(90.0 + t, 5.0) for t in range(10)]
        (result,) = evaluate_live(spec, self._aggregator_with(points), now=99.0)
        [window] = result.burn_rates
        assert window["short_burn"] > 2.0
        assert window["long_burn"] <= 2.0
        assert result.ok

        # sustained violation: both windows burn -> fires
        points = [(float(t), 5.0) for t in range(100)]
        (result,) = evaluate_live(spec, self._aggregator_with(points), now=99.0)
        assert not result.ok
        assert result.burn_rates[0]["fired"]

    def test_artifact_only_slos_are_skipped(self):
        spec = parse_spec(_spec(_slo()))
        assert evaluate_live(spec, self._aggregator_with([]), now=0.0) == []


class TestSloCheckCli:
    def test_committed_baseline_passes(self, capsys):
        code = main([
            "slo", "check",
            "--artifact", COMMITTED_BASELINE,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        artifact = json.loads(open(COMMITTED_BASELINE).read())
        series = artifact["cases"]["fig11_delay"]["stage_seconds"]
        for summary in series.values():
            for quantile in ("p50", "p95", "p99"):
                if quantile in summary:
                    summary[quantile] = summary[quantile] * 100.0
        regressed = tmp_path / "BENCH_regressed.json"
        regressed.write_text(json.dumps(artifact))
        code = main(["slo", "check", "--artifact", str(regressed)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "violated" in out

    def test_json_format(self, capsys):
        code = main([
            "slo", "check",
            "--artifact", COMMITTED_BASELINE,
            "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == 0
        assert all(entry["ok"] for entry in payload["results"])

    def test_missing_artifact_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="slo check failed"):
            main(["slo", "check", "--artifact", "nope.json"])
