"""Decision-journal unit tests: writer, reader, diff, explain, stats.

The journal is the provenance substrate of the replay/diff/explain
tooling, so these tests pin its durability contract (torn tails are
survivable, mid-file corruption is not), its concurrency contract
(per-device order under interleaved writers), and the exactness of the
JSON round trip the byte-identical replay relies on.
"""

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DecisionJournal,
    JournalFile,
    JournalRecord,
    SCHEMA_VERSION,
    configure,
    configure_journal,
    disable_journal,
    explain_image,
    first_divergence,
    format_explain,
    format_stats,
    get_journal,
    journal_stats,
    journal_to,
    read_journal,
)


def record(seq, event, device=None, image=None, **data):
    """A JournalRecord literal for reader-free tests."""
    return JournalRecord(
        seq=seq, event=event, device=device, image=image, span=None, data=data
    )


def journal_file(*records, run="test-run"):
    return JournalFile(
        path="<memory>",
        header={"event": "journal.header", "schema": SCHEMA_VERSION, "run": run},
        records=tuple(records),
    )


class TestWriterRoundTrip:
    def test_records_round_trip_through_the_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with journal_to(path, run_id="rt-run") as journal:
            with journal.bind("dev-00"):
                journal.emit(
                    "cbrd.verdict",
                    image_id="img-1",
                    redundant=False,
                    max_similarity=0.012345678901234567,
                )
            journal.emit("server.index", image_id="img-1", index_size=1)
        parsed = read_journal(path)
        assert parsed.run_id == "rt-run"
        assert parsed.torn_tail is None
        assert len(parsed.records) == 2
        first, second = parsed.records
        assert first.seq == 0 and second.seq == 1
        assert first.device == "dev-00" and second.device is None
        assert first.image == "img-1"
        # Floats survive the JSON round trip exactly (repr-based).
        assert first.data["max_similarity"] == 0.012345678901234567

    def test_payload_key_order_is_preserved(self, tmp_path):
        # Replay sums energy categories in recorded order; the writer
        # must never sort payload keys.
        path = tmp_path / "order.jsonl"
        with journal_to(path) as journal:
            journal.emit("fleet.batch", energy={"zeta": 1.0, "alpha": 2.0})
        (rec,) = read_journal(path).records
        assert list(rec.data["energy"]) == ["zeta", "alpha"]

    def test_in_memory_journal_keeps_records(self):
        journal = DecisionJournal(path=None)
        journal.emit("aiu.prepare", image_id="img-9", mode="transmit")
        assert journal.path is None
        assert len(journal.records) == 1
        assert journal.records[0].image == "img-9"

    def test_snapshot_counts_events_and_devices(self):
        journal = DecisionJournal(path=None)
        with journal.bind("dev-01"):
            journal.emit("cbrd.verdict", image_id="a")
            journal.emit("cbrd.verdict", image_id="b")
        journal.emit("fleet.round")
        snap = journal.snapshot()
        assert snap["events"] == 3
        assert snap["by_event"] == {"cbrd.verdict": 2, "fleet.round": 1}
        assert snap["by_device"] == {"dev-01": 2}
        assert snap["path"] is None

    def test_disabled_journal_is_a_no_op(self):
        journal = DecisionJournal(enabled=False)
        with journal.bind("dev-00"):
            assert journal.emit("cbrd.verdict", image_id="x") is None
        assert journal.records == []

    def test_flush_every_validates(self):
        with pytest.raises(ObservabilityError):
            DecisionJournal(flush_every=0)

    def test_emit_captures_the_enclosing_span(self, tmp_path):
        obs = configure()
        path = tmp_path / "span.jsonl"
        with journal_to(path) as journal:
            with obs.span("cbrd.verify") as span:
                rec = journal.emit("cbrd.verdict", image_id="img-1")
                assert rec is not None and rec.span == span.span_id
            outside = journal.emit("fleet.round")
        assert outside is not None and outside.span is None


class TestGlobals:
    def test_journal_to_installs_and_restores(self, tmp_path):
        before = get_journal()
        assert not before.enabled
        with journal_to(tmp_path / "g.jsonl") as journal:
            assert get_journal() is journal
        assert get_journal() is before

    def test_configure_and_disable(self, tmp_path):
        journal = configure_journal(path=tmp_path / "c.jsonl", run_id="cfg")
        assert get_journal() is journal and journal.enabled
        disable_journal()
        assert not get_journal().enabled
        # The file was closed with its header intact.
        assert read_journal(tmp_path / "c.jsonl").run_id == "cfg"


class TestDurability:
    def make_journal(self, path, n=4):
        with journal_to(path, run_id="dur") as journal:
            for i in range(n):
                journal.emit("cbrd.verdict", image_id=f"img-{i}", redundant=False)

    def test_torn_final_record_is_skipped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self.make_journal(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "event": "cbrd.ver')  # crash mid-write
        parsed = read_journal(path)
        assert parsed.torn_tail is not None
        assert len(parsed.records) == 4

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        self.make_journal(path)
        lines = path.read_text().splitlines()
        lines[2] = "!!! not json !!!"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ObservabilityError, match="corrupt at line 3"):
            read_journal(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="empty"):
            read_journal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"seq": 0, "event": "cbrd.verdict", "data": {}}\n')
        with pytest.raises(ObservabilityError, match="journal.header"):
            read_journal(path)

    def test_future_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {
            "event": "journal.header",
            "schema": SCHEMA_VERSION + 1,
            "run": "f",
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ObservabilityError, match="unsupported schema"):
            read_journal(path)

    def test_strict_field_coercion(self):
        with pytest.raises(ObservabilityError):
            JournalRecord.from_json_dict(
                {"seq": True, "event": "x", "data": {}}
            )
        with pytest.raises(ObservabilityError):
            JournalRecord.from_json_dict(
                {"seq": 0, "event": "x", "data": "not-a-dict"}
            )


class TestConcurrency:
    def test_concurrent_writers_keep_per_device_order(self, tmp_path):
        path = tmp_path / "threads.jsonl"
        n_threads, n_events = 8, 50
        with journal_to(path) as journal:

            def work(number):
                with journal.bind(f"dev-{number:02d}"):
                    for i in range(n_events):
                        journal.emit("cbrd.verdict", image_id=f"d{number}-i{i}")

            threads = [
                threading.Thread(target=work, args=(number,))
                for number in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        parsed = read_journal(path)
        assert len(parsed.records) == n_threads * n_events
        # Global sequence numbers are unique and dense.
        seqs = [rec.seq for rec in parsed.records]
        assert sorted(seqs) == list(range(n_threads * n_events))
        streams = parsed.by_device()
        assert len(streams) == n_threads
        for device, stream in streams.items():
            # Strictly monotonic per device, and image order matches
            # the device's own emission order.
            assert [r.seq for r in stream] == sorted(r.seq for r in stream)
            assert [r.image for r in stream] == [
                f"d{int(device[4:])}-i{i}" for i in range(n_events)
            ]

    def test_bind_is_thread_local(self):
        journal = DecisionJournal(path=None)
        seen = {}

        def work():
            seen["worker"] = journal.device

        with journal.bind("dev-main"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
            assert journal.device == "dev-main"
        assert seen["worker"] is None
        assert journal.device is None

    def test_bind_nests_and_restores(self):
        journal = DecisionJournal(path=None)
        with journal.bind("outer"):
            with journal.bind("inner"):
                assert journal.device == "inner"
            assert journal.device == "outer"


class TestDiff:
    def test_identical_journals_have_no_divergence(self):
        records = [
            record(0, "cbrd.verdict", device="dev-00", image="a", redundant=False),
            record(1, "fleet.batch", device="dev-00", uploaded=["a"]),
        ]
        assert first_divergence(
            journal_file(*records), journal_file(*records)
        ) is None

    def test_seq_and_span_are_volatile(self):
        left = record(0, "cbrd.verdict", device="d", image="a", redundant=False)
        right = JournalRecord(
            seq=7, event="cbrd.verdict", device="d", image="a", span=123,
            data={"redundant": False},
        )
        assert first_divergence(journal_file(left), journal_file(right)) is None

    def test_payload_divergence_is_localized(self):
        shared = record(0, "aiu.prepare", device="dev-01", image="a", mode="transmit")
        left = record(1, "cbrd.verdict", device="dev-01", image="b", redundant=False)
        right = record(1, "cbrd.verdict", device="dev-01", image="b", redundant=True)
        divergence = first_divergence(
            journal_file(shared, left), journal_file(shared, right)
        )
        assert divergence is not None
        assert divergence.device == "dev-01"
        assert divergence.position == 1
        text = divergence.describe()
        assert "dev-01" in text and "cbrd.verdict" in text
        assert "redundant" in text

    def test_ignored_events_do_not_diff(self):
        left = journal_file(
            record(0, "kernel.cache", hits=10),
            record(1, "index.route", image="a", shard=0),
        )
        right = journal_file(
            record(0, "kernel.cache", hits=99),
        )
        assert first_divergence(left, right) is None

    def test_extra_event_reports_the_longer_side(self):
        shared = record(0, "cbrd.verdict", device="dev-00", image="a")
        extra = record(1, "aiu.prepare", device="dev-00", image="a", mode="transmit")
        divergence = first_divergence(
            journal_file(shared, extra), journal_file(shared)
        )
        assert divergence is not None
        assert divergence.right is None and divergence.left is not None
        assert "only the left" in divergence.describe()

    def test_coordinator_stream_diffs_first(self):
        left = journal_file(
            record(0, "server.index", image="a", index_size=1),
            record(1, "cbrd.verdict", device="dev-00", image="z", redundant=True),
        )
        right = journal_file(
            record(0, "server.index", image="b", index_size=1),
            record(1, "cbrd.verdict", device="dev-00", image="z", redundant=False),
        )
        divergence = first_divergence(left, right)
        assert divergence is not None
        assert divergence.device is None
        assert "<coordinator>" in divergence.describe()


class TestExplain:
    def chain(self):
        return journal_file(
            record(0, "cbrd.verdict", device="dev-00", image="img-1", redundant=False),
            record(1, "ssmm.select", device="dev-00", selected=["img-1"], rejected=[]),
            record(2, "cbrd.verdict", device="dev-01", image="img-2",
                   redundant=True, best_match="img-1"),
            record(3, "server.index", image="img-3", index_size=3),
        )

    def test_explain_collects_subject_and_references(self):
        chain = explain_image(self.chain(), "img-1")
        assert [r.seq for r in chain] == [0, 1, 2]

    def test_format_explain_labels_roles(self):
        text = format_explain(self.chain(), "img-1")
        assert "3 event(s)" in text
        assert "[subject]" in text and "[referenced]" in text
        assert "best_match" in text

    def test_format_explain_on_unknown_image(self):
        assert "no journal events" in format_explain(self.chain(), "nope")


class TestStats:
    def batch(self, device, uploaded, eliminated, joules, halted=False):
        return record(
            0,
            "fleet.batch",
            device=device,
            n_images=uploaded + eliminated,
            uploaded=[f"{device}-u{i}" for i in range(uploaded)],
            eliminated_cross=[f"{device}-e{i}" for i in range(eliminated)],
            eliminated_in=[],
            sent_bytes=1000 * uploaded,
            energy={"upload": joules},
            halted=halted,
        )

    def test_healthy_fleet_has_no_flags(self):
        stats = journal_stats(
            journal_file(
                self.batch("dev-00", 4, 1, 100.0),
                self.batch("dev-01", 4, 1, 101.0),
            )
        )
        assert stats.stragglers == ()
        assert stats.energy_outliers == ()
        assert stats.elimination_drift == ()
        assert stats.devices[0].elimination_rate == pytest.approx(0.2)

    def test_halted_device_is_a_straggler(self):
        stats = journal_stats(
            journal_file(
                self.batch("dev-00", 4, 0, 100.0),
                self.batch("dev-01", 0, 0, 5.0, halted=True),
            )
        )
        assert "dev-01" in stats.stragglers

    def test_energy_outlier_detection(self):
        stats = journal_stats(
            journal_file(
                self.batch("dev-00", 4, 0, 100.0),
                self.batch("dev-01", 4, 0, 101.0),
                self.batch("dev-02", 4, 0, 300.0),
            )
        )
        assert stats.energy_outliers == ("dev-02",)

    def test_elimination_drift_detection(self):
        stats = journal_stats(
            journal_file(
                self.batch("dev-00", 4, 0, 100.0),
                self.batch("dev-01", 1, 3, 100.0),
            )
        )
        assert "dev-01" in stats.elimination_drift

    def test_format_stats_renders_the_table(self):
        text = format_stats(
            journal_stats(
                journal_file(
                    self.batch("dev-00", 4, 1, 100.0),
                    self.batch("dev-01", 0, 0, 5.0, halted=True),
                )
            )
        )
        assert "dev-00" in text and "dev-01" in text
        assert "stragglers: dev-01" in text
