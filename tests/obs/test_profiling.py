"""Tests for the sampling profiler and its folded-stack output."""

import threading
import time

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs import configure
from repro.obs.profiling import (
    GLOBAL_TRACER,
    NO_SPAN,
    ProfileStats,
    SamplingProfiler,
    parse_folded,
)
from repro.obs.tracer import Tracer


class TestLifecycle:
    def test_rate_must_be_sane(self):
        with pytest.raises(ObservabilityError):
            SamplingProfiler(hz=0)
        with pytest.raises(ObservabilityError):
            SamplingProfiler(hz=-5)
        with pytest.raises(ObservabilityError):
            SamplingProfiler(hz=5000)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(ObservabilityError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ObservabilityError):
            SamplingProfiler().stop()

    def test_context_manager_collects_samples(self):
        with SamplingProfiler(hz=500) as profiler:
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                if profiler.stats().n_samples:
                    break
                sum(range(1000))
        stats = profiler.stats()
        assert stats.n_samples >= 1
        assert stats.wall_seconds > 0
        assert not profiler.running

    def test_effective_hz(self):
        stats = ProfileStats(n_samples=20, n_ticks=10, wall_seconds=2.0, hz=97.0)
        assert stats.effective_hz == pytest.approx(5.0)
        zero = ProfileStats(n_samples=0, n_ticks=0, wall_seconds=0.0, hz=97.0)
        assert zero.effective_hz == 0.0


class TestSpanAttribution:
    """sample_now() is the deterministic path: no timing involved."""

    def _sample_other_thread(self, profiler, tracer, ready, release):
        """Run a span on a helper thread and sample it from here."""

        def work():
            with tracer.span("bees.batch"):
                with tracer.span("bees.afe"):
                    ready.set()
                    release.wait(timeout=5)

        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        assert ready.wait(timeout=5)
        profiler.sample_now()
        release.set()
        thread.join(timeout=5)

    def test_sample_carries_span_path_prefix(self):
        tracer = Tracer()
        profiler = SamplingProfiler(tracer=tracer)
        self._sample_other_thread(
            profiler, tracer, threading.Event(), threading.Event()
        )
        paths = [
            key for key in profiler.stack_counts()
            if key[:2] == ("bees.batch", "bees.afe")
        ]
        assert paths, profiler.stack_counts()
        # past the span prefix, every frame is filename.py:function
        for key in paths:
            assert all(":" in segment for segment in key[2:])

    def test_global_tracer_sentinel_follows_reconfigure(self):
        obs = configure()
        profiler = SamplingProfiler(tracer=GLOBAL_TRACER)
        self._sample_other_thread(
            profiler, obs.tracer, threading.Event(), threading.Event()
        )
        spans = profiler.samples_by_span(prefix="bees.")
        assert spans.get("bees.afe", 0) >= 1

    def test_spanless_threads_fall_under_no_span(self):
        profiler = SamplingProfiler(tracer=Tracer())
        ready, release = threading.Event(), threading.Event()

        def idle():
            ready.set()
            release.wait(timeout=5)

        thread = threading.Thread(target=idle, daemon=True)
        thread.start()
        assert ready.wait(timeout=5)
        profiler.sample_now()
        release.set()
        thread.join(timeout=5)
        by_span = profiler.samples_by_span()
        assert by_span.get(NO_SPAN, 0) >= 1
        assert set(by_span) == {NO_SPAN}

    def test_samples_by_span_picks_innermost_matching(self):
        profiler = SamplingProfiler()
        profiler._counts[("fleet.run", "bees.batch", "bees.afe", "a.py:f")] = 3
        profiler._counts[("fleet.run", "a.py:g")] = 2
        assert profiler.samples_by_span(prefix="bees.") == {
            "bees.afe": 3,
            NO_SPAN: 2,
        }
        assert profiler.samples_by_span() == {"bees.afe": 3, "fleet.run": 2}

    def test_reset_drops_samples(self):
        profiler = SamplingProfiler()
        profiler.sample_now()
        profiler.reset()
        assert profiler.stack_counts() == {}
        assert profiler.stats().n_samples == 0


class TestFoldedFormat:
    def test_round_trips_through_parse(self, tmp_path):
        profiler = SamplingProfiler()
        profiler._counts[("bees.afe", "orb.py:extract")] = 7
        profiler._counts[("(no-span)", "runner.py:loop")] = 2
        path = tmp_path / "profile.folded"
        assert profiler.write_folded(path) == 2
        assert parse_folded(path.read_text()) == profiler.stack_counts()

    def test_hottest_stack_leads(self):
        profiler = SamplingProfiler()
        profiler._counts[("cold", "a.py:f")] = 1
        profiler._counts[("hot", "a.py:f")] = 9
        first = profiler.folded().splitlines()[0]
        assert first == "hot;a.py:f 9"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ObservabilityError):
            parse_folded("stack;with;no;count notanumber\n")
        with pytest.raises(ObservabilityError):
            parse_folded("42\n")

    def test_parse_merges_duplicate_stacks(self):
        assert parse_folded("a;b 1\na;b 2\n") == {("a", "b"): 3}


class TestFleetProfileArtifact:
    """Acceptance: ``repro fleet run --profile`` covers the hot stages."""

    def test_fleet_profile_samples_every_hot_stage(self, tmp_path, capsys):
        path = tmp_path / "fleet.folded"
        code = main(
            [
                "fleet", "run",
                "--devices", "3",
                "--rounds", "2",
                "--mode", "concurrent",
                "--profile", str(path),
                "--profile-hz", "900",
            ]
        )
        assert code == 0
        counts = parse_folded(path.read_text())
        by_stage = {}
        for key, n in counts.items():
            for segment in key:
                if ":" in segment:
                    break
                if segment.startswith("bees."):
                    by_stage[segment] = by_stage.get(segment, 0) + n
        # The compute-heavy stages must each catch at least one sample.
        for stage in ("bees.batch", "bees.afe"):
            assert by_stage.get(stage, 0) >= 1, (stage, by_stage)
        assert "wrote" in capsys.readouterr().out
