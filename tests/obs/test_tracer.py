"""Tests for the span tracer: nesting, exception safety, no-op mode."""

import pytest

from repro.obs.tracer import NULL_SPAN, Span, Tracer


class TestNesting:
    def test_parent_ids_follow_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_finished_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.finished] == ["outer", "inner"][::-1]

    def test_active_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.active is None
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.active.name == "inner"
            assert tracer.active.name == "outer"
        assert tracer.active is None


class TestTiming:
    def test_duration_and_start_filled(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        span = tracer.finished[0]
        assert span.duration >= 0.0
        assert span.start > 0.0

    def test_attributes_from_kwargs_and_setter(self):
        tracer = Tracer()
        with tracer.span("attrs", image_id="img-1", ebat=0.5) as span:
            span.set_attribute("bytes", 1024)
        recorded = tracer.finished[0].attributes
        assert recorded == {"image_id": "img-1", "ebat": 0.5, "bytes": 1024}


class TestExceptionSafety:
    def test_exception_propagates_and_span_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert len(tracer.finished) == 1
        span = tracer.finished[0]
        assert span.error == "ValueError: boom"
        assert span.duration >= 0.0
        assert tracer.active is None  # stack unwound

    def test_outer_span_survives_inner_failure(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with tracer.span("inner"):
                    raise RuntimeError("inner boom")
            # outer is still the active span and can keep recording
            assert tracer.active is outer
        assert outer.error is None
        assert tracer.finished[-1] is outer


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", key="value") is NULL_SPAN

    def test_null_span_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as span:
            span.set_attribute("ignored", 1)
            with tracer.span("b"):
                pass
        assert tracer.finished == []
        assert tracer.active is None

    def test_null_span_does_not_swallow_exceptions(self):
        tracer = Tracer(enabled=False)
        with pytest.raises(KeyError):
            with tracer.span("a"):
                raise KeyError("k")


class TestSerialisation:
    def test_to_dict_has_required_fields(self):
        span = Span(name="n", span_id=3, parent_id=1, start=12.0, duration=0.5)
        record = span.to_dict()
        for key in ("name", "span_id", "parent_id", "start", "duration"):
            assert key in record
        assert "error" not in record

    def test_reset_clears_everything(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert len(tracer) == 0
        with tracer.span("y") as span:
            pass
        assert span.span_id == 0
