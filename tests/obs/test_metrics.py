"""Tests for counters, gauges, histograms, and the registry."""

import math
import warnings

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    MAX_LABEL_SETS,
    CardinalityWarning,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_are_independent(self):
        counter = Counter("c_total", "help", ("scheme",))
        counter.inc(1, scheme="BEES")
        counter.inc(2, scheme="MRC")
        assert counter.value(scheme="BEES") == 1
        assert counter.value(scheme="MRC") == 2

    def test_never_decreases(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_untouched_series_reads_zero(self):
        counter = Counter("c_total", "help", ("scheme",))
        assert counter.value(scheme="nope") == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13


class TestLabelValidation:
    def test_unknown_label_rejected(self):
        counter = Counter("c_total", "help", ("scheme",))
        with pytest.raises(ObservabilityError):
            counter.inc(1, scheme="BEES", extra="nope")

    def test_missing_label_rejected(self):
        counter = Counter("c_total", "help", ("scheme", "stage"))
        with pytest.raises(ObservabilityError):
            counter.inc(1, scheme="BEES")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter("bad name!", "help")


class TestCardinalityGuard:
    """Past the cap, writes to *new* label sets warn once and drop."""

    def _saturated(self, cap: int = 4) -> Counter:
        counter = Counter("c_total", "help", ("image_id",), max_label_sets=cap)
        for index in range(cap):
            counter.inc(1, image_id=f"img-{index}")
        return counter

    def test_new_series_past_cap_is_dropped_with_warning(self):
        counter = self._saturated()
        with pytest.warns(CardinalityWarning, match="c_total"):
            counter.inc(1, image_id="one-too-many")
        assert counter.value(image_id="one-too-many") == 0.0
        assert counter.dropped_updates == 1

    def test_existing_series_keep_working_at_the_cap(self):
        counter = self._saturated()
        with pytest.warns(CardinalityWarning):
            counter.inc(1, image_id="overflow")
        counter.inc(1, image_id="img-0")
        assert counter.value(image_id="img-0") == 2

    def test_warns_once_but_counts_every_drop(self):
        counter = self._saturated()
        with pytest.warns(CardinalityWarning):
            counter.inc(1, image_id="drop-0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            counter.inc(1, image_id="drop-1")
            counter.inc(1, image_id="drop-0")
        assert counter.dropped_updates == 3

    def test_gauge_and_histogram_writers_drop_too(self):
        gauge = Gauge("g", "help", ("k",), max_label_sets=1)
        gauge.set(1.0, k="a")
        with pytest.warns(CardinalityWarning):
            gauge.set(9.0, k="b")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            gauge.inc(1.0, k="c")
        assert gauge.value(k="b") == 0.0
        assert gauge.dropped_updates == 2

        histogram = Histogram(
            "h", "help", ("k",), buckets=(1.0,), max_label_sets=1
        )
        histogram.observe(0.5, k="a")
        with pytest.warns(CardinalityWarning):
            histogram.observe(0.5, k="b")
        assert histogram.value(k="b").count == 0
        assert histogram.dropped_updates == 1

    def test_default_cap_is_global_constant(self):
        assert Counter("c_total", "help", ("k",)).max_label_sets == MAX_LABEL_SETS

    def test_clear_resets_the_guard(self):
        counter = self._saturated()
        with pytest.warns(CardinalityWarning):
            counter.inc(1, image_id="dropped")
        counter.clear()
        assert counter.dropped_updates == 0
        counter.inc(1, image_id="fresh")  # below the cap again: accepted
        assert counter.value(image_id="fresh") == 1


class TestHistogramQuantile:
    def _loaded(self) -> Histogram:
        """4 obs in (0,1], 4 in (1,2], 2 in (2,4] — count 10, sum 14."""
        histogram = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 0.5, 0.5, 1.5, 1.5, 1.5, 1.5, 3.0, 3.0):
            histogram.observe(value)
        return histogram

    def test_interpolates_within_the_crossing_bucket(self):
        histogram = self._loaded()
        # rank 5 of 10 sits a quarter of the way into the (1, 2] bucket
        assert histogram.quantile(0.5) == pytest.approx(1.25)
        # rank 9 sits halfway into the (2, 4] bucket
        assert histogram.quantile(0.9) == pytest.approx(3.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)

    def test_first_bucket_interpolates_from_zero(self):
        histogram = Histogram("h", "help", buckets=(2.0, 4.0))
        histogram.observe(1.0)
        histogram.observe(1.0)
        assert histogram.quantile(0.5) == pytest.approx(1.0)

    def test_empty_series_is_nan(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        assert math.isnan(histogram.quantile(0.5))

    def test_out_of_range_q_rejected(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)
        with pytest.raises(ObservabilityError):
            histogram.quantile(-0.1)

    def test_overflow_observations_clamp_to_largest_bound(self):
        histogram = Histogram("h", "help", buckets=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(0.99) == 2.0

    def test_labeled_series_are_independent(self):
        histogram = Histogram("h", "help", ("stage",), buckets=(1.0, 2.0))
        histogram.observe(0.5, stage="afe")
        histogram.observe(1.5, stage="aiu")
        assert histogram.quantile(1.0, stage="afe") <= 1.0
        assert histogram.quantile(1.0, stage="aiu") > 1.0

    def test_summary_shape_and_values(self):
        summary = self._loaded().summary()
        assert set(summary) == {"count", "sum", "mean", "p50", "p95", "p99"}
        assert summary["count"] == 10
        assert summary["sum"] == pytest.approx(14.0)
        assert summary["mean"] == pytest.approx(1.4)
        assert summary["p50"] == pytest.approx(1.25)
        assert summary["p95"] <= summary["p99"] <= 4.0

    def test_summary_of_empty_series(self):
        summary = Histogram("h", "help", buckets=(1.0,)).summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert math.isnan(summary["p50"])

    def test_summary_custom_quantiles(self):
        summary = self._loaded().summary(quantiles=(0.25,))
        assert set(summary) == {"count", "sum", "mean", "p25"}

    def test_single_sample_every_quantile_lands_in_its_bucket(self):
        histogram = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        for q in (0.01, 0.5, 0.99, 1.0):
            value = histogram.quantile(q)
            assert 1.0 < value <= 2.0, (q, value)

    def test_all_equal_samples_stay_in_one_bucket(self):
        histogram = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)
        low, mid, high = (histogram.quantile(q) for q in (0.01, 0.5, 0.99))
        assert 1.0 < low <= 2.0
        assert 1.0 < mid <= 2.0
        assert 1.0 < high <= 2.0
        assert low <= mid <= high


class TestBucketQuantile:
    """The module-level kernel shared with the live windowed series."""

    def test_empty_is_nan(self):
        assert math.isnan(bucket_quantile((1.0, 2.0), [0, 0], 0, 0.5))

    def test_interpolates(self):
        # 2 obs in (1, 2]: the median sits mid-bucket.
        assert bucket_quantile((1.0, 2.0), [0, 2], 2, 0.5) == pytest.approx(1.5)

    def test_overflow_clamps_to_largest_finite_bound(self):
        assert bucket_quantile((1.0, 2.0), [0, 0], 3, 0.99) == 2.0


class TestHistogram:
    def test_boundary_value_lands_in_lower_bucket(self):
        # `le` is inclusive: an observation equal to a bound belongs to
        # that bound's bucket.
        histogram = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.0)
        histogram.observe(2.0)
        histogram.observe(2.0001)
        cumulative = dict(histogram.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 2
        assert cumulative[4.0] == 3
        assert cumulative[math.inf] == 3

    def test_overflow_goes_to_inf_only(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        histogram.observe(100.0)
        cumulative = dict(histogram.cumulative_buckets())
        assert cumulative[1.0] == 0
        assert cumulative[math.inf] == 1

    def test_sum_and_count(self):
        histogram = Histogram("h", "help", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value)
        series = histogram.value()
        assert series.count == 3
        assert series.sum == pytest.approx(22.5)

    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", "help", buckets=())

    def test_explicit_inf_bucket_is_folded(self):
        histogram = Histogram("h", "help", buckets=(1.0, math.inf))
        assert histogram.buckets == (1.0,)

    def test_labeled_histograms_are_independent(self):
        histogram = Histogram("h", "help", ("stage",), buckets=(1.0,))
        histogram.observe(0.5, stage="afe")
        histogram.observe(0.7, stage="aiu")
        assert histogram.value(stage="afe").count == 1
        assert histogram.value(stage="aiu").count == 1


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("scheme",))
        second = registry.counter("c_total", "help", ("scheme",))
        assert first is second
        assert len(registry) == 1

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "help")
        with pytest.raises(ObservabilityError):
            registry.gauge("m", "help")
        with pytest.raises(ObservabilityError):
            registry.counter("m", "help", ("scheme",))

    def test_reset_clears_series_not_definitions(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.get("c_total") is counter
