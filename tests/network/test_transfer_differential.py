"""Zero-loss differential: chunked transfer == whole-payload transfer.

The chunked transport must be a pure superset of the whole-payload
path: with both loss rates at zero and no contact schedule, splitting a
payload into chunks is bookkeeping, not physics — same single goodput
sample, same seconds (one closed formula, so *bit*-identical, not just
within tolerance), same byte counters, and therefore the same joules
out of the battery.  Anything else would mean turning on the degraded
machinery silently re-prices every clean experiment in the repo.
"""

import pytest

from repro.energy import EnergyCostModel
from repro.network import (
    ChunkedTransport,
    FluctuatingChannel,
    LossyChannel,
    Uplink,
)
from repro.sim.device import Smartphone

SEEDS = (0, 1, 7, 42)
CHUNK_SIZES = (1_024, 16_384, 100_000)
PAYLOADS = (0, 1, 999, 16_384, 50_000, 123_457)


def _pair(seed, chunk_bytes, strategy="arq", replicas=1):
    clean = Uplink(channel=FluctuatingChannel(seed=seed))
    chunked = Uplink(
        channel=LossyChannel(seed=seed),
        transport=ChunkedTransport(
            chunk_bytes=chunk_bytes, strategy=strategy, replicas=replicas
        ),
    )
    return clean, chunked


class TestUplinkIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk_bytes", CHUNK_SIZES)
    def test_arq_seconds_and_bytes_identical(self, seed, chunk_bytes):
        clean, chunked = _pair(seed, chunk_bytes)
        for payload_bytes in PAYLOADS:
            a = clean.transfer(payload_bytes)
            b = chunked.transfer(payload_bytes)
            assert b.seconds == a.seconds  # bit-identical, no tolerance
            assert b.goodput_bps == a.goodput_bps
            assert b.wire_bytes == a.payload_bytes
        assert chunked.sent_bytes == clean.sent_bytes
        assert chunked.transfer_count == clean.transfer_count
        assert chunked.retransmits == 0

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_single_replica_identical(self, seed):
        # replica voting with k=1 is ARQ-shaped: same bytes, same time.
        clean, chunked = _pair(seed, 16_384, strategy="replica", replicas=1)
        for payload_bytes in PAYLOADS:
            a = clean.transfer(payload_bytes)
            b = chunked.transfer(payload_bytes)
            assert b.seconds == a.seconds
            assert b.wire_bytes == a.payload_bytes
        assert chunked.sent_bytes == clean.sent_bytes

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rng_stream_identical(self, seed):
        # A zero-loss LossyChannel must consume no extra RNG draws, so
        # the goodput sequence matches the plain channel's exactly.
        clean = FluctuatingChannel(seed=seed)
        lossy = LossyChannel(seed=seed)
        chunked = Uplink(
            channel=lossy, transport=ChunkedTransport(chunk_bytes=1_024)
        )
        for payload_bytes in PAYLOADS:
            expected = clean.sample_goodput_bps()
            assert chunked.transfer(payload_bytes).goodput_bps == expected


class TestDeviceEnergyIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk_bytes", CHUNK_SIZES)
    def test_joules_identical(self, seed, chunk_bytes):
        clean, chunked = _pair(seed, chunk_bytes)
        phone_a = Smartphone(name="clean", uplink=clean)
        phone_b = Smartphone(name="chunked", uplink=chunked)
        for payload_bytes in PAYLOADS:
            assert phone_a.upload(payload_bytes, "image_upload") is not None
            assert phone_b.upload(payload_bytes, "image_upload") is not None
        # Same seconds -> same radio joules, bit for bit.
        assert (
            phone_b.battery.remaining_joules == phone_a.battery.remaining_joules
        )
        assert phone_b.meter.total_joules == phone_a.meter.total_joules

    def test_transfer_cost_is_pure_in_seconds(self):
        # The energy identity reduces to the seconds identity because
        # radio cost is a function of seconds alone.
        model = EnergyCostModel()
        assert (
            model.transfer_cost(1.25).joules == model.transfer_cost(1.25).joules
        )
