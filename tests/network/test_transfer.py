"""Tests for the chunked, corruption-aware transfer layer."""

import zlib

import pytest

from repro.errors import NetworkError
from repro.network import (
    ChunkedTransport,
    ContactSchedule,
    LossyChannel,
    Uplink,
    pattern_payload,
    reassemble,
    split_payload,
)

from .faults import FaultPlan, drop, flip, steady_channel


def _uplink(transport, channel=None, latency=0.1):
    return Uplink(
        channel=channel if channel is not None else steady_channel(),
        latency_seconds=latency,
        transport=transport,
    )


class TestChunking:
    def test_split_covers_payload(self):
        payload = pattern_payload(10_000)
        chunks = split_payload(payload, 4096)
        assert [len(c) for c in chunks] == [4096, 4096, 1808]
        assert b"".join(chunks) == payload

    def test_split_rejects_bad_chunk_size(self):
        with pytest.raises(NetworkError):
            split_payload(b"abc", 0)

    def test_reassemble_is_order_invariant(self):
        chunks = split_payload(pattern_payload(5000), 512)
        shuffled = {i: c for i, c in reversed(list(enumerate(chunks)))}
        assert reassemble(shuffled) == b"".join(chunks)

    def test_reassemble_rejects_gaps(self):
        with pytest.raises(NetworkError):
            reassemble({0: b"a", 2: b"c"})

    def test_pattern_payload_deterministic(self):
        assert pattern_payload(600) == pattern_payload(600)
        assert pattern_payload(600)[:256] == bytes(range(256))
        assert pattern_payload(0) == b""
        with pytest.raises(NetworkError):
            pattern_payload(-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_bytes": 0},
            {"strategy": "carrier-pigeon"},
            {"max_retries": -1},
            {"replicas": 0},
            {"max_replica_rounds": 0},
            {"backoff_base_seconds": -0.1},
        ],
    )
    def test_rejects_bad_transport_config(self, kwargs):
        with pytest.raises(NetworkError):
            ChunkedTransport(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bit_error_rate": 1.0},
            {"bit_error_rate": -0.1},
            {"chunk_drop_rate": 1.0},
            {"chunk_drop_rate": -0.1},
        ],
    )
    def test_rejects_bad_channel_rates(self, kwargs):
        with pytest.raises(NetworkError):
            LossyChannel(**kwargs)


class TestArq:
    def test_clean_channel_single_attempt_per_chunk(self):
        plan = FaultPlan()
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq"),
            channel=plan.channel(),
        )
        result = uplink.transfer(3_500)
        assert result.chunks == 4
        assert result.retransmits == 0
        assert result.wire_bytes == 3_500
        assert plan.consumed == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_dropped_chunk_is_retransmitted(self):
        plan = FaultPlan(fates={(1, 1): drop()})
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq"),
            channel=plan.channel(),
        )
        result = uplink.transfer(3_000)
        assert result.retransmits == 1
        assert result.dropped_chunks == 1
        assert result.wire_bytes == 4_000
        assert (1, 2) in plan.consumed

    def test_corrupted_chunk_is_retransmitted(self):
        plan = FaultPlan(fates={(0, 1): flip(3, 17)})
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq"),
            channel=plan.channel(),
        )
        result = uplink.transfer(2_000)
        assert result.retransmits == 1
        assert result.wire_bytes == 3_000
        assert uplink.corrupt_transfers == 0

    def test_backoff_grows_exponentially(self):
        base = 0.05
        transport = ChunkedTransport(
            chunk_bytes=1000, strategy="arq", backoff_base_seconds=base
        )
        clean = _uplink(transport, channel=steady_channel()).transfer(1000).seconds
        for n_failures, backoff in [(1, base), (2, base + 2 * base)]:
            plan = FaultPlan(
                fates={(0, attempt): drop() for attempt in range(1, n_failures + 1)}
            )
            result = _uplink(transport, channel=plan.channel()).transfer(1000)
            retransmit_bits = n_failures * 1000 * 8.0 / 80_000.0
            assert result.seconds == pytest.approx(
                clean + backoff + retransmit_bits
            )

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(
            fates={(0, attempt): drop() for attempt in range(1, 10)}
        )
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq", max_retries=3),
            channel=plan.channel(),
        )
        with pytest.raises(NetworkError):
            uplink.transfer(1000)
        # Exactly 1 + max_retries attempts went on the air.
        assert plan.consumed == [(0, 1), (0, 2), (0, 3), (0, 4)]


class TestReplica:
    def test_clean_channel_costs_k_copies(self):
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="replica", replicas=3),
            channel=steady_channel(),
        )
        result = uplink.transfer(2_500)
        assert result.wire_bytes == 3 * 2_500
        assert result.vote_corrections == 0
        assert uplink.corrupt_transfers == 0

    def test_minority_corruption_is_outvoted(self):
        plan = FaultPlan(fates={(0, 1): flip(5)})  # replica 0 of chunk 0
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="replica", replicas=3),
            channel=plan.channel(),
        )
        result = uplink.transfer(1000)
        assert result.vote_corrections == 1
        assert result.residual_corrupt_chunks == 0
        assert uplink.corrupt_transfers == 0

    def test_majority_corruption_is_residual(self):
        # Same bit flipped in 2 of 3 replicas: the vote gets it wrong,
        # and the transport must say so rather than pretend.
        plan = FaultPlan(fates={(0, 1): flip(5), (0, 2): flip(5)})
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="replica", replicas=3),
            channel=plan.channel(),
        )
        result = uplink.transfer(1000)
        assert result.residual_corrupt_chunks == 1
        assert uplink.corrupt_transfers == 1
        assert uplink.residual_corrupt_chunks == 1

    def test_all_replicas_dropped_triggers_resend_round(self):
        plan = FaultPlan(
            fates={(0, 1): drop(), (0, 2): drop(), (0, 3): drop()}
        )
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="replica", replicas=3),
            channel=plan.channel(),
        )
        result = uplink.transfer(1000)
        assert result.wire_bytes == 6_000  # two full replica rounds
        assert result.retransmits == 3

    def test_persistent_drop_raises(self):
        plan = FaultPlan(
            fates={
                (0, attempt): drop()
                for attempt in range(1, 20)
            }
        )
        uplink = _uplink(
            ChunkedTransport(
                chunk_bytes=1000,
                strategy="replica",
                replicas=2,
                max_replica_rounds=2,
            ),
            channel=plan.channel(),
        )
        with pytest.raises(NetworkError):
            uplink.transfer(1000)


class TestContactWindows:
    def test_transfer_waits_for_window(self):
        schedule = ContactSchedule(
            period_seconds=100.0, up_seconds=10.0, offset_seconds=-50.0
        )
        # At clock 0 the link is mid-gap (phase 50): first chunk stalls.
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq", schedule=schedule),
            channel=steady_channel(),
            latency=0.0,
        )
        result = uplink.transfer(1000)
        assert result.seconds == pytest.approx(50.0 + 1000 * 8.0 / 80_000.0)

    def test_long_payload_spans_multiple_passes(self):
        schedule = ContactSchedule(period_seconds=100.0, up_seconds=1.0)
        # 80 kbps x 1 s window = 10 kB per pass; 35 kB needs 4 passes.
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=5_000, strategy="arq", schedule=schedule),
            channel=steady_channel(),
            latency=0.0,
        )
        result = uplink.transfer(35_000)
        assert result.seconds > 300.0
        assert result.wait_seconds > 0.0

    def test_uplink_clock_positions_later_transfers(self):
        schedule = ContactSchedule(period_seconds=100.0, up_seconds=10.0)
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq", schedule=schedule),
            channel=steady_channel(),
            latency=0.0,
        )
        first = uplink.transfer(1000)   # inside the first window
        assert first.wait_seconds == 0.0
        # Clock is now ~0.1 s; a 16 kB transfer (1.6 s of air) fits the
        # window, but a 160 kB one (16 s) must stall into the next pass.
        second = uplink.transfer(160_000)
        assert second.wait_seconds > 0.0
        assert uplink.clock_seconds > 100.0

    def test_schedule_validation(self):
        with pytest.raises(NetworkError):
            ContactSchedule(period_seconds=0.0, up_seconds=1.0)
        with pytest.raises(NetworkError):
            ContactSchedule(period_seconds=10.0, up_seconds=0.0)
        with pytest.raises(NetworkError):
            ContactSchedule(period_seconds=10.0, up_seconds=11.0)

    def test_schedule_geometry(self):
        schedule = ContactSchedule(period_seconds=10.0, up_seconds=2.0)
        assert schedule.duty_cycle == pytest.approx(0.2)
        assert schedule.is_up(0.5)
        assert not schedule.is_up(5.0)
        assert schedule.next_up_seconds(5.0) == pytest.approx(10.0)
        assert schedule.next_up_seconds(11.0) == pytest.approx(11.0)


class TestSentBytesAccounting:
    def test_sent_bytes_counts_retransmissions(self):
        # Regression: sent_bytes must charge the wire, not the payload —
        # a retransmitted chunk is real bandwidth.
        plan = FaultPlan(fates={(0, 1): drop(), (1, 1): drop()})
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq"),
            channel=plan.channel(),
        )
        uplink.transfer(3_000)
        assert uplink.sent_bytes == 5_000

    def test_sent_bytes_counts_replicas(self):
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="replica", replicas=5),
            channel=steady_channel(),
        )
        uplink.transfer(2_000)
        assert uplink.sent_bytes == 10_000

    def test_whole_payload_path_unchanged(self):
        uplink = Uplink(channel=steady_channel())
        result = uplink.transfer(4_000)
        assert result.wire_bytes == 4_000
        assert uplink.sent_bytes == 4_000

    def test_reset_clears_degraded_counters(self):
        plan = FaultPlan(fates={(0, 1): drop()})
        uplink = _uplink(
            ChunkedTransport(chunk_bytes=1000, strategy="arq"),
            channel=plan.channel(),
        )
        uplink.transfer(1000)
        assert uplink.retransmits == 1
        uplink.reset_counters()
        assert uplink.retransmits == 0
        assert uplink.clock_seconds == 0.0


class TestChecksum:
    def test_crc_detects_planned_flip(self):
        payload = pattern_payload(1000)
        corrupted = bytearray(payload)
        corrupted[0] ^= 1 << 5
        assert zlib.crc32(bytes(corrupted)) != zlib.crc32(payload)
