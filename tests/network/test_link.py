"""Tests for the uplink."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.network.channel import FluctuatingChannel
from repro.network.link import Uplink


def _steady_uplink(bps=100_000, latency=0.1):
    return Uplink(
        channel=FluctuatingChannel(median_bps=bps, relative_spread=0.0),
        latency_seconds=latency,
    )


class TestTransfer:
    def test_duration_formula(self):
        uplink = _steady_uplink(bps=100_000, latency=0.5)
        result = uplink.transfer(12_500)  # 100,000 bits
        assert result.seconds == pytest.approx(0.5 + 1.0)

    def test_zero_bytes_costs_latency_only(self):
        uplink = _steady_uplink(latency=0.2)
        assert uplink.transfer(0).seconds == pytest.approx(0.2)

    def test_counters_accumulate(self):
        uplink = _steady_uplink()
        uplink.transfer(100)
        uplink.transfer(200)
        assert uplink.sent_bytes == 300
        assert uplink.transfer_count == 2

    def test_reset_counters(self):
        uplink = _steady_uplink()
        uplink.transfer(100)
        uplink.reset_counters()
        assert uplink.sent_bytes == 0
        assert uplink.transfer_count == 0

    def test_rejects_negative_payload(self):
        with pytest.raises(NetworkError):
            _steady_uplink().transfer(-1)

    def test_rejects_negative_latency(self):
        with pytest.raises(NetworkError):
            Uplink(latency_seconds=-0.1)

    @given(st.integers(min_value=0, max_value=10**7))
    def test_duration_monotone_in_size(self, payload):
        uplink = _steady_uplink()
        small = uplink.transfer(payload).seconds
        large = uplink.transfer(payload + 1000).seconds
        assert large > small

    def test_faster_channel_shorter_transfer(self):
        slow = _steady_uplink(bps=128_000).transfer(100_000).seconds
        fast = _steady_uplink(bps=512_000).transfer(100_000).seconds
        assert fast < slow
