"""Deterministic fault-injection fixtures for the degraded-network suites.

A :class:`FaultPlan` scripts *exactly* which chunk transmissions fail and
how, replacing the seeded randomness of
:class:`repro.network.LossyChannel` with a table keyed on
``(chunk_index, attempt)`` — the hook ``LossyChannel.chunk_fate``
documents.  The same plan object drives uplink tests
(:class:`PlannedLossyChannel`), DTN tests (:class:`PlannedContactLoss`
scripts contact fates positionally), and fleet tests, so one fault
scenario exercises every layer identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network import ChunkFate, ContactLoss, FluctuatingChannel, LossyChannel

#: The intact fate (mirrors ``repro.network.lossy.INTACT_FATE``).
OK = ChunkFate()


def drop() -> ChunkFate:
    """A scripted chunk drop."""
    return ChunkFate(dropped=True)


def flip(*bits: int) -> ChunkFate:
    """A scripted corruption flipping the given bit positions."""
    return ChunkFate(flip_bits=tuple(sorted(bits)))


@dataclass
class FaultPlan:
    """A script of chunk fates keyed on ``(chunk_index, attempt)``.

    Unscripted transmissions succeed.  ``consumed`` records the order in
    which fates were drawn so tests can assert the transport actually
    exercised the planned failures.
    """

    fates: "dict[tuple[int, int], ChunkFate]" = field(default_factory=dict)
    consumed: "list[tuple[int, int]]" = field(default_factory=list)

    def fate_for(self, chunk_index: int, attempt: int) -> ChunkFate:
        self.consumed.append((chunk_index, attempt))
        return self.fates.get((chunk_index, attempt), OK)

    def channel(self, bps: float = 80_000.0, seed: int = 0) -> "PlannedLossyChannel":
        """A spread-free lossy channel driven by this plan."""
        return PlannedLossyChannel(
            plan=self, median_bps=bps, relative_spread=0.0, seed=seed
        )


@dataclass
class PlannedLossyChannel(LossyChannel):
    """A :class:`LossyChannel` whose chunk fates follow a script.

    Goodput still fluctuates from the channel seed (set
    ``relative_spread=0.0`` for fixed-rate tests); only the loss
    process is deterministic, and it consumes no RNG draws at all.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)

    def chunk_fate(self, chunk_index: int, attempt: int, n_bytes: int) -> ChunkFate:
        del n_bytes
        return self.plan.fate_for(chunk_index, attempt)


@dataclass
class PlannedContactLoss(ContactLoss):
    """A :class:`ContactLoss` whose fates follow a positional script.

    The *n*-th lossy contact transmission draws the *n*-th entry of
    ``script`` (``"ok"`` / ``"drop"`` / ``"corrupt"``); the script
    repeats nothing — transmissions past its end succeed.  No RNG draws
    are consumed, so scripted runs share the contact process of an
    unscripted run with the same simulation seed.
    """

    script: "tuple[str, ...]" = ()
    consumed: int = field(default=0, init=False)

    def fate(self, rng: "np.random.Generator") -> str:
        del rng
        position = self.consumed
        self.consumed += 1
        if position < len(self.script):
            return self.script[position]
        return "ok"


def steady_channel(
    bps: float = 80_000.0, seed: int = 0, **lossy_kwargs: float
) -> LossyChannel:
    """A spread-free lossy channel: goodput is exactly *bps*."""
    return LossyChannel(
        median_bps=bps, relative_spread=0.0, seed=seed, **lossy_kwargs
    )


def steady_reference(bps: float = 80_000.0, seed: int = 0) -> FluctuatingChannel:
    """The spread-free clean channel matching :func:`steady_channel`."""
    return FluctuatingChannel(median_bps=bps, relative_spread=0.0, seed=seed)
