"""Tests for outage injection."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.network.link import Uplink
from repro.network.outage import OUTAGE_TRICKLE_BPS, OutageChannel


class TestOutageChannel:
    def test_no_outages_behaves_like_base(self):
        channel = OutageChannel(outage_probability=0.0, relative_spread=0.0)
        samples = [channel.sample_goodput_bps() for _ in range(50)]
        assert all(sample == channel.median_bps for sample in samples)

    def test_outages_produce_trickle_samples(self):
        channel = OutageChannel(outage_probability=0.3, seed=1)
        samples = [channel.sample_goodput_bps() for _ in range(300)]
        assert OUTAGE_TRICKLE_BPS in samples

    def test_outages_are_bursty(self):
        """Low recovery probability stretches outages over consecutive
        transfers — the Gilbert-model burstiness."""
        channel = OutageChannel(
            outage_probability=0.2, recovery_probability=0.2, seed=2
        )
        samples = np.array([channel.sample_goodput_bps() for _ in range(400)])
        down = samples == OUTAGE_TRICKLE_BPS
        runs = np.diff(np.flatnonzero(np.diff(down.astype(int)) != 0))
        assert down.mean() > 0.2  # substantial downtime
        assert (runs > 1).any()  # multi-transfer bursts exist

    def test_deterministic(self):
        a = OutageChannel(outage_probability=0.2, seed=3)
        b = OutageChannel(outage_probability=0.2, seed=3)
        assert [a.sample_goodput_bps() for _ in range(20)] == [
            b.sample_goodput_bps() for _ in range(20)
        ]

    def test_validation(self):
        with pytest.raises(NetworkError):
            OutageChannel(outage_probability=1.5)
        with pytest.raises(NetworkError):
            OutageChannel(recovery_probability=0.0)
        with pytest.raises(NetworkError):
            OutageChannel(trickle_bps=0.0)


class TestOutageImpact:
    def test_outages_inflate_transfer_times(self):
        healthy = Uplink(channel=OutageChannel(outage_probability=0.0, seed=4))
        flaky = Uplink(
            channel=OutageChannel(
                outage_probability=0.3, recovery_probability=0.3, seed=4
            )
        )
        healthy_total = sum(healthy.transfer(50_000).seconds for _ in range(40))
        flaky_total = sum(flaky.transfer(50_000).seconds for _ in range(40))
        assert flaky_total > 2 * healthy_total

    def test_redundancy_elimination_pays_more_under_outages(self):
        """The disaster argument: when the network degrades, every
        avoided upload saves even more time/energy — BEES' advantage
        over Direct grows."""
        from repro.core.client import BeesScheme
        from repro.baselines import DirectUpload
        from repro.datasets import DisasterDataset
        from repro.sim.device import Smartphone
        from repro.sim.session import build_server

        data = DisasterDataset()
        batch = data.make_batch(n_images=8, n_inbatch_similar=2, seed=3)
        partners = data.cross_batch_partners(batch, 0.25, seed=4)

        def delays(outage_probability):
            out = {}
            for scheme in (DirectUpload(), BeesScheme()):
                device = Smartphone(
                    uplink=Uplink(
                        channel=OutageChannel(
                            outage_probability=outage_probability,
                            recovery_probability=0.4,
                            seed=7,
                        )
                    )
                )
                report = scheme.process_batch(
                    device, build_server(scheme, partners), batch
                )
                out[scheme.name] = report.average_image_seconds
            return out

        healthy = delays(0.0)
        flaky = delays(0.3)
        healthy_gap = healthy["Direct Upload"] - healthy["BEES"]
        flaky_gap = flaky["Direct Upload"] - flaky["BEES"]
        assert flaky_gap > healthy_gap
