"""Property-based tests for the degraded-network transfer layer.

Three invariants the recovery machinery promises:

* k-replica majority voting recovers the exact payload whenever every
  byte position is corrupted in strictly fewer than ``ceil(k / 2)``
  replicas;
* chunk reassembly is invariant to the arrival-order permutation;
* ARQ always terminates — delivery within the retry bound, or a
  :class:`~repro.errors.NetworkError`, never a hang or a silent
  truncation.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.kernels import majority_vote_bytes
from repro.network import ChunkedTransport, Uplink, pattern_payload, reassemble

from .faults import FaultPlan, drop

MAX_RETRIES = 4


@st.composite
def outvoted_corruptions(draw):
    """A payload plus replicas corrupted below the voting threshold.

    Every byte position is corrupted (arbitrarily, not just bit flips)
    in strictly fewer than ``ceil(k / 2)`` of the ``k`` replicas — the
    regime in which voting must recover the payload exactly.
    """
    payload = bytes(
        draw(st.lists(st.integers(0, 255), min_size=1, max_size=48))
    )
    k = draw(st.integers(min_value=3, max_value=7))
    threshold = math.ceil(k / 2)
    replicas = [bytearray(payload) for _ in range(k)]
    for position in range(len(payload)):
        n_corrupt = draw(st.integers(min_value=0, max_value=threshold - 1))
        victims = draw(
            st.permutations(range(k)).map(lambda order: order[:n_corrupt])
        )
        for victim in victims:
            replicas[victim][position] = draw(st.integers(0, 255))
    return payload, [bytes(replica) for replica in replicas]


class TestVoteRecovery:
    @settings(max_examples=60)
    @given(outvoted_corruptions())
    def test_minority_corruption_recovers_exact_payload(self, case):
        payload, replicas = case
        assert majority_vote_bytes(replicas) == payload

    @settings(max_examples=30)
    @given(
        st.binary(min_size=0, max_size=64),
        st.integers(min_value=1, max_value=7),
    )
    def test_identical_replicas_are_a_fixed_point(self, payload, k):
        assert majority_vote_bytes([payload] * k) == payload


class TestReassembly:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=1, max_value=700),
        st.randoms(use_true_random=False),
    )
    def test_arrival_order_never_matters(self, n_bytes, chunk_bytes, rng):
        payload = pattern_payload(n_bytes)
        chunks = list(enumerate(
            payload[start : start + chunk_bytes]
            for start in range(0, len(payload), chunk_bytes)
        ))
        rng.shuffle(chunks)
        assert reassemble(dict(chunks)) == payload


class TestArqTermination:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=4_000),
        st.dictionaries(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=MAX_RETRIES + 1),
            ),
            st.just(True),
            max_size=12,
        ),
    )
    def test_delivers_or_raises_within_retry_bound(self, n_bytes, dropped):
        plan = FaultPlan(fates={key: drop() for key in dropped})
        uplink = Uplink(
            channel=plan.channel(),
            transport=ChunkedTransport(
                chunk_bytes=1024, strategy="arq", max_retries=MAX_RETRIES
            ),
        )
        try:
            result = uplink.transfer(n_bytes)
        except NetworkError:
            # Termination by giving up: some chunk must actually have
            # burned its whole budget.
            exhausted = {
                chunk
                for chunk in range(4)
                if all(
                    (chunk, attempt) in plan.fates
                    for attempt in range(1, MAX_RETRIES + 2)
                )
            }
            assert exhausted
        else:
            assert result.payload_bytes == n_bytes
            assert result.wire_bytes >= n_bytes
        # Either way the transport never exceeded the per-chunk bound.
        for chunk in range(4):
            attempts = [c for c in plan.consumed if c[0] == chunk]
            assert len(attempts) <= 1 + MAX_RETRIES

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=MAX_RETRIES))
    def test_budget_is_exact(self, n_failures):
        plan = FaultPlan(
            fates={(0, attempt): drop() for attempt in range(1, n_failures + 1)}
        )
        uplink = Uplink(
            channel=plan.channel(),
            transport=ChunkedTransport(
                chunk_bytes=1024, strategy="arq", max_retries=MAX_RETRIES
            ),
        )
        result = uplink.transfer(512)
        assert result.retransmits == n_failures
        assert result.wire_bytes == 512 * (1 + n_failures)

    def test_one_failure_past_budget_raises(self):
        plan = FaultPlan(
            fates={
                (0, attempt): drop()
                for attempt in range(1, MAX_RETRIES + 2)
            }
        )
        uplink = Uplink(
            channel=plan.channel(),
            transport=ChunkedTransport(
                chunk_bytes=1024, strategy="arq", max_retries=MAX_RETRIES
            ),
        )
        with pytest.raises(NetworkError):
            uplink.transfer(512)
