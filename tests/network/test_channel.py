"""Tests for the fluctuating channel."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.network.channel import DEFAULT_MEDIAN_BPS, FluctuatingChannel


class TestChannel:
    def test_default_median_is_256kbps(self):
        assert DEFAULT_MEDIAN_BPS == 256_000

    def test_samples_within_spread(self):
        channel = FluctuatingChannel(median_bps=100_000, relative_spread=0.5, seed=1)
        samples = [channel.sample_goodput_bps() for _ in range(200)]
        assert min(samples) >= 50_000
        assert max(samples) <= 150_000

    def test_mean_near_median(self):
        channel = FluctuatingChannel(median_bps=100_000, relative_spread=0.5, seed=1)
        samples = [channel.sample_goodput_bps() for _ in range(500)]
        assert np.mean(samples) == pytest.approx(100_000, rel=0.05)

    def test_zero_spread_is_constant(self):
        channel = FluctuatingChannel(median_bps=100_000, relative_spread=0.0)
        assert channel.sample_goodput_bps() == 100_000

    def test_seeded_reproducibility(self):
        a = FluctuatingChannel(seed=7)
        b = FluctuatingChannel(seed=7)
        assert [a.sample_goodput_bps() for _ in range(5)] == [
            b.sample_goodput_bps() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = FluctuatingChannel(seed=7)
        b = FluctuatingChannel(seed=8)
        assert a.sample_goodput_bps() != b.sample_goodput_bps()

    def test_rejects_bad_median(self):
        with pytest.raises(NetworkError):
            FluctuatingChannel(median_bps=0)

    def test_rejects_bad_spread(self):
        with pytest.raises(NetworkError):
            FluctuatingChannel(relative_spread=1.0)
