"""Tests for report rendering helpers."""

import pytest

from repro.analysis.reporting import (
    format_bytes,
    format_percent,
    format_table,
    print_figure,
)
from repro.errors import BeesError


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # Every line is padded to the same total width.
        assert len({len(line) for line in lines}) == 1

    def test_rejects_empty_headers(self):
        with pytest.raises(BeesError):
            format_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(BeesError):
            format_table(["a", "b"], [["only-one"]])

    def test_headers_only(self):
        table = format_table(["x"], [])
        assert "x" in table


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(700 * 1024) == "700.0 KB"

    def test_megabytes(self):
        assert format_bytes(2.5 * 1024**2) == "2.5 MB"

    def test_gigabytes(self):
        assert format_bytes(3.4 * 1024**3) == "3.4 GB"

    def test_rejects_negative(self):
        with pytest.raises(BeesError):
            format_bytes(-1)


class TestFormatPercent:
    def test_rendering(self):
        assert format_percent(0.423) == "42.3%"
        assert format_percent(1.0) == "100.0%"


class TestPrintFigure:
    def test_prints_banner_and_body(self, capsys):
        print_figure("Figure 7", "row1\nrow2")
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "row1" in out
