"""Tests for precision and rate-curve analysis."""

import numpy as np
import pytest

from repro.analysis.precision import (
    dataset_precision,
    pair_similarities,
    rate_curve,
    top_k_precision,
)
from repro.core.server import BeesServer
from repro.datasets.kentucky import SyntheticKentucky
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def kentucky_server(orb):
    """A server indexed with a small Kentucky dataset."""
    dataset = SyntheticKentucky(n_groups=6)
    server = BeesServer()
    group_of = {}
    for image in dataset:
        features = orb.extract(image)
        server.receive_image(image, features)
        group_of[image.image_id] = image.group_id
    return dataset, server, group_of


class TestTopKPrecision:
    def test_indexed_query_retrieves_own_group(self, kentucky_server, orb):
        dataset, server, group_of = kentucky_server
        image = dataset.image(0, 0)
        precision = top_k_precision(
            server, orb.extract(image), image.group_id, group_of
        )
        # The query itself plus its 3 group mates fill the top-4.
        assert precision >= 0.75

    def test_requires_group(self, kentucky_server, orb_features):
        _, server, group_of = kentucky_server
        with pytest.raises(SimulationError):
            top_k_precision(server, orb_features, "", group_of)

    def test_unrelated_query_zero_precision(self, kentucky_server, orb, generator):
        _, server, group_of = kentucky_server
        foreign = orb.extract(generator.view(999_999, 0, image_id="f"))
        assert top_k_precision(server, foreign, "nope", group_of) == 0.0


class TestDatasetPrecision:
    def test_high_on_kentucky(self, kentucky_server, orb):
        dataset, server, group_of = kentucky_server
        queries = [(image, orb.extract(image)) for image in dataset.query_images()]
        precision = dataset_precision(server, queries, group_of)
        assert precision > 0.8

    def test_rejects_empty(self, kentucky_server):
        _, server, group_of = kentucky_server
        with pytest.raises(SimulationError):
            dataset_precision(server, [], group_of)


class TestRateCurve:
    def test_rates_decrease_with_threshold(self):
        similar = np.array([0.3, 0.4, 0.02, 0.25])
        dissimilar = np.array([0.001, 0.02, 0.005, 0.03])
        points = rate_curve(similar, dissimilar, [0.01, 0.05, 0.5])
        tprs = [p.true_positive_rate for p in points]
        fprs = [p.false_positive_rate for p in points]
        assert tprs == sorted(tprs, reverse=True)
        assert fprs == sorted(fprs, reverse=True)

    def test_rates_are_fractions_above_threshold(self):
        similar = np.array([0.1, 0.3])
        dissimilar = np.array([0.05, 0.01])
        [point] = rate_curve(similar, dissimilar, [0.08])
        assert point.true_positive_rate == 1.0
        assert point.false_positive_rate == 0.0

    def test_rejects_empty_inputs(self):
        with pytest.raises(SimulationError):
            rate_curve(np.array([]), np.array([0.1]), [0.05])


class TestPairSimilarities:
    def test_splits_by_label(self, orb):
        dataset = SyntheticKentucky(n_groups=4)
        pairs = dataset.similar_pairs(3, seed=1) + dataset.dissimilar_pairs(3, seed=2)
        similar, dissimilar = pair_similarities(pairs, orb.extract)
        assert len(similar) == 3
        assert len(dissimilar) == 3
        assert similar.min() > dissimilar.max()
