"""Tests for the ASCII chart primitives."""

import numpy as np
import pytest

from repro.analysis.charts import bar_chart, density_map, sparkline
from repro.errors import BeesError


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line == "".join(sorted(line, key=" ▁▂▃▄▅▆▇█".index))

    def test_constant_series_flat(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_explicit_bounds(self):
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert line == "▄"

    def test_extremes(self):
        line = sparkline([0.0, 1.0], lo=0.0, hi=1.0)
        assert line[0] == " " and line[1] == "█"

    def test_rejects_empty(self):
        with pytest.raises(BeesError):
            sparkline([])


class TestBarChart:
    def test_one_row_per_entry(self):
        chart = bar_chart([("a", 1.0), ("bb", 2.0)])
        assert len(chart.splitlines()) == 2

    def test_longest_bar_for_peak(self):
        chart = bar_chart([("small", 1.0), ("big", 4.0)], width=8)
        lines = chart.splitlines()
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2

    def test_zero_values(self):
        chart = bar_chart([("nil", 0.0)])
        assert "█" not in chart

    def test_labels_aligned(self):
        chart = bar_chart([("a", 1.0), ("longer", 1.0)])
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_rejections(self):
        with pytest.raises(BeesError):
            bar_chart([])
        with pytest.raises(BeesError):
            bar_chart([("x", 1.0)], width=0)
        with pytest.raises(BeesError):
            bar_chart([("x", -1.0)])


class TestDensityMap:
    def test_shape(self):
        grid = np.zeros((3, 5), dtype=int)
        lines = density_map(grid).splitlines()
        assert len(lines) == 3
        assert all(len(line) == 7 for line in lines)  # borders add 2

    def test_north_up(self):
        grid = np.zeros((2, 2), dtype=int)
        grid[1, 0] = 1  # northern row
        lines = density_map(grid).splitlines()
        assert lines[0] != "|  |"
        assert lines[1] == "|  |"

    def test_log_shading_monotone(self):
        grid = np.array([[0, 1, 4, 64]])
        row = density_map(grid, border=False)
        shades = " .:*#@"
        assert [shades.index(c) for c in row] == sorted(shades.index(c) for c in row)

    def test_rejects_bad_grid(self):
        with pytest.raises(BeesError):
            density_map(np.zeros(3))
        with pytest.raises(BeesError):
            density_map(np.array([[-1]]))
