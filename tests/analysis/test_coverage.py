"""Tests for coverage analysis."""

import numpy as np
import pytest

from repro.analysis.coverage import density_grid, summarize_geotags
from repro.datasets.geo import BoundingBox
from repro.errors import SimulationError


class TestSummarize:
    def test_counts(self):
        tags = [(1.0, 2.0)] * 3 + [(3.0, 4.0)] + [None]
        summary = summarize_geotags(tags)
        assert summary.n_images == 4
        assert summary.n_unique_locations == 2
        assert summary.densest_location_count == 3

    def test_empty(self):
        summary = summarize_geotags([])
        assert summary.n_images == 0
        assert summary.coverage_per_image == 0.0

    def test_coverage_per_image(self):
        tags = [(1.0, 2.0), (1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]
        assert summarize_geotags(tags).coverage_per_image == pytest.approx(0.75)


class TestDensityGrid:
    BOX = BoundingBox(0.0, 1.0, 0.0, 1.0)

    def test_counts_in_cells(self):
        grid = density_grid([(0.05, 0.05), (0.05, 0.05), (0.95, 0.95)], self.BOX, n_bins=2)
        assert grid[0, 0] == 2
        assert grid[1, 1] == 1
        assert grid.sum() == 3

    def test_outside_box_ignored(self):
        grid = density_grid([(2.0, 2.0), None], self.BOX, n_bins=2)
        assert grid.sum() == 0

    def test_boundary_clamps_to_last_bin(self):
        grid = density_grid([(1.0, 1.0)], self.BOX, n_bins=4)
        assert grid[3, 3] == 1

    def test_rejects_bad_bins(self):
        with pytest.raises(SimulationError):
            density_grid([], self.BOX, n_bins=0)

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        tags = [(float(x), float(y)) for x, y in rng.uniform(0, 1, (50, 2))]
        assert density_grid(tags, self.BOX, n_bins=8).sum() == 50
